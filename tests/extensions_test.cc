/**
 * @file
 * Tests for the extension features beyond the paper's PoC: sequential
 * prefetch, CP queue depth > 1, thermal refresh throttling on the
 * full system, the zero-fill write-allocate fast path, NVDIMM-F, and
 * the related edge cases (phase wraparound, clean-victim scans).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include <cstring>
#include <sstream>
#include <vector>

#include "bus/bus_tracer.hh"

#include "core/system.hh"
#include "driver/nvdimmf_driver.hh"
#include "driver/nvdimmn_driver.hh"
#include "workload/fio.hh"

namespace nvdimmc
{
namespace
{

using core::NvdimmcSystem;
using core::SystemConfig;

std::unique_ptr<NvdimmcSystem>
makeSystem(std::function<void(SystemConfig&)> tweak = {})
{
    SystemConfig cfg = SystemConfig::scaledTest();
    if (tweak)
        tweak(cfg);
    return std::make_unique<NvdimmcSystem>(cfg);
}

void
syncWrite(NvdimmcSystem& sys, Addr off, std::uint32_t len,
          const std::uint8_t* data)
{
    bool done = false;
    sys.driver().write(off, len, data, [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    ASSERT_TRUE(done);
}

void
syncRead(NvdimmcSystem& sys, Addr off, std::uint32_t len,
         std::uint8_t* buf)
{
    bool done = false;
    sys.driver().read(off, len, buf, [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    ASSERT_TRUE(done);
}

// --- CP queue depth > 1 ---

TEST(CpQueueDepth, ConcurrentMissesUseMultipleSlots)
{
    auto sys = makeSystem([](SystemConfig& c) {
        c.driver.cpQueueDepth = 4;
        c.nvmc.firmware.cpQueueDepth = 4;
    });
    sys->driver().markEverWritten(0, 16);

    int done = 0;
    for (int i = 0; i < 8; ++i) {
        sys->driver().read(static_cast<Addr>(i) * 4096, 4096, nullptr,
                           [&] { ++done; });
    }
    while (done < 8 && sys->eq().runOne()) {
    }
    EXPECT_EQ(done, 8);
    EXPECT_EQ(sys->nvmc()->firmware().stats().cachefills.value(), 8u);
    EXPECT_TRUE(sys->hardwareClean());
}

TEST(CpQueueDepth, DepthFourBeatsDepthOneOnConcurrentMisses)
{
    auto measure = [](std::uint32_t depth) {
        auto sys = makeSystem([&](SystemConfig& c) {
            c.driver.cpQueueDepth = depth;
            c.nvmc.firmware.cpQueueDepth = depth;
        });
        sys->driver().markEverWritten(0, 16);
        int done = 0;
        Tick start = sys->eq().now();
        for (int i = 0; i < 8; ++i) {
            sys->driver().read(static_cast<Addr>(i) * 4096, 4096,
                               nullptr, [&] { ++done; });
        }
        while (done < 8 && sys->eq().runOne()) {
        }
        return sys->eq().now() - start;
    };
    Tick d1 = measure(1);
    Tick d4 = measure(4);
    EXPECT_LT(d4 * 3, d1 * 2) << "depth 4 must be at least 1.5x faster";
}

TEST(CpQueueDepth, DataIntegrityAtDepthFour)
{
    auto sys = makeSystem([](SystemConfig& c) {
        c.driver.cpQueueDepth = 4;
        c.nvmc.firmware.cpQueueDepth = 4;
    });
    // Write distinct patterns concurrently (first touch = zero-fill),
    // then force eviction traffic and read everything back.
    std::vector<std::vector<std::uint8_t>> bufs;
    for (int i = 0; i < 6; ++i)
        bufs.emplace_back(4096, static_cast<std::uint8_t>(0x40 + i));
    int done = 0;
    for (int i = 0; i < 6; ++i) {
        sys->driver().write(static_cast<Addr>(i) * 4096, 4096,
                            bufs[static_cast<std::size_t>(i)].data(),
                            [&] { ++done; });
    }
    while (done < 6 && sys->eq().runOne()) {
    }
    std::vector<std::uint8_t> r(4096);
    for (int i = 0; i < 6; ++i) {
        syncRead(*sys, static_cast<Addr>(i) * 4096, 4096, r.data());
        EXPECT_EQ(r[0], 0x40 + i);
        EXPECT_EQ(r[4095], 0x40 + i);
    }
    EXPECT_TRUE(sys->hardwareClean());
}

// --- CP phase wraparound ---

TEST(CpPhase, SurvivesWraparound)
{
    // More than 255 commands through the single CP slot: the phase
    // field wraps and every command must still be decoded exactly
    // once.
    auto sys = makeSystem();
    sys->driver().markEverWritten(0, 600);
    std::uint32_t slots = sys->layout().slotCount();
    (void)slots;
    // 300 first-touch reads -> 300 cachefill commands (free slots).
    int done = 0;
    std::function<void(int)> next = [&](int i) {
        if (i >= 300)
            return;
        sys->driver().read(static_cast<Addr>(i) * 4096, 4096, nullptr,
                           [&, i] {
                               ++done;
                               next(i + 1);
                           });
    };
    next(0);
    while (done < 300 && sys->eq().runOne()) {
    }
    EXPECT_EQ(done, 300);
    EXPECT_EQ(sys->nvmc()->firmware().stats().commandsAccepted.value(),
              300u);
}

// --- Zero-fill write-allocate fast path ---

TEST(ZeroFill, FirstTouchReadIsFastAndZero)
{
    auto sys = makeSystem();
    std::vector<std::uint8_t> r(4096, 0xcc);
    Tick start = sys->eq().now();
    syncRead(*sys, 0x20000, 4096, r.data());
    EXPECT_LT(sys->eq().now() - start, sys->config().refresh.tREFI);
    EXPECT_EQ(r[0], 0x00);
    EXPECT_EQ(sys->driver().stats().cachefills.value(), 0u);
}

TEST(ZeroFill, EvictionPathStillPaysThePair)
{
    auto sys = makeSystem();
    std::uint32_t slots = sys->layout().slotCount();
    sys->precondition(0, slots, true);
    // First touch of a fresh page with a FULL cache: the write pays
    // the writeback of the victim AND (per the paper) the cachefill.
    std::vector<std::uint8_t> b(4096, 1);
    Tick start = sys->eq().now();
    syncWrite(*sys, static_cast<Addr>(slots + 5) * 4096, 4096,
              b.data());
    EXPECT_GE(sys->eq().now() - start,
              3 * sys->config().refresh.tREFI);
    EXPECT_GE(sys->driver().stats().writebacks.value(), 1u);
}

// --- Sequential prefetch ---

TEST(Prefetch, SequentialMissStreamTriggersPrefetch)
{
    auto sys = makeSystem([](SystemConfig& c) {
        c.driver.prefetchEnabled = true;
        c.driver.prefetchDepth = 2;
        c.driver.cpQueueDepth = 4;
        c.nvmc.firmware.cpQueueDepth = 4;
        c.driver.trackDirty = true;
    });
    sys->driver().markEverWritten(0, 64);
    std::vector<std::uint8_t> r(4096);
    for (int i = 0; i < 8; ++i)
        syncRead(*sys, static_cast<Addr>(i) * 4096, 4096, r.data());
    EXPECT_GT(sys->driver().stats().prefetchesIssued.value(), 0u);
    EXPECT_GT(sys->driver().stats().prefetchHits.value() +
                  sys->driver().cache().stats().hits.value(),
              0u);
    EXPECT_TRUE(sys->hardwareClean());
}

TEST(Prefetch, PrefetchedDataIsCorrect)
{
    auto sys = makeSystem([](SystemConfig& c) {
        c.driver.prefetchEnabled = true;
        c.driver.prefetchDepth = 2;
        c.driver.cpQueueDepth = 4;
        c.nvmc.firmware.cpQueueDepth = 4;
        c.driver.trackDirty = true;
    });
    // Seed NAND pages 0..7 with distinct contents via the backend.
    for (int i = 0; i < 8; ++i) {
        std::vector<std::uint8_t> page(
            4096, static_cast<std::uint8_t>(0x70 + i));
        bool done = false;
        sys->backend().writePage(static_cast<std::uint64_t>(i),
                                 page.data(), [&] { done = true; });
        while (!done && sys->eq().runOne()) {
        }
    }
    sys->driver().markEverWritten(0, 8);

    std::vector<std::uint8_t> r(4096);
    for (int i = 0; i < 8; ++i) {
        syncRead(*sys, static_cast<Addr>(i) * 4096, 4096, r.data());
        EXPECT_EQ(r[0], 0x70 + i) << "page " << i;
        EXPECT_EQ(r[4095], 0x70 + i);
    }
    EXPECT_TRUE(sys->hardwareClean());
}

TEST(Prefetch, RandomAccessesDoNotPrefetch)
{
    auto sys = makeSystem([](SystemConfig& c) {
        c.driver.prefetchEnabled = true;
        c.driver.cpQueueDepth = 2;
        c.nvmc.firmware.cpQueueDepth = 2;
    });
    sys->driver().markEverWritten(0, 1200);
    std::vector<std::uint8_t> r(4096);
    // Strided pattern: never page+1.
    for (int i = 0; i < 6; ++i)
        syncRead(*sys, static_cast<Addr>(i * 37) * 4096, 4096, r.data());
    EXPECT_EQ(sys->driver().stats().prefetchesIssued.value(), 0u);
}

// --- Thermal throttling on the full system ---

TEST(Thermal, HotDimmShiftsBandwidthToTheNvmc)
{
    auto measureUncached = [](double temp) {
        SystemConfig cfg = SystemConfig::scaledBench();
        NvdimmcSystem sys(cfg);
        sys.imc().setTemperature(temp);
        sys.precondition(0, sys.layout().slotCount(), true);
        sys.driver().markEverWritten(0, sys.backend().pageCount());

        workload::FioConfig fio;
        fio.pattern = workload::FioConfig::Pattern::RandRead;
        fio.blockSize = 4096;
        fio.regionOffset =
            std::uint64_t{sys.layout().slotCount() + 128} * 4096;
        fio.regionBytes =
            sys.driver().capacityBytes() - fio.regionOffset;
        fio.rampTime = 5 * kMs;
        fio.runTime = 40 * kMs;
        workload::FioJob job(
            sys.eq(),
            [&sys](Addr off, std::uint32_t len, bool is_write,
                   std::function<void()> done) {
                if (is_write)
                    sys.driver().write(off, len, nullptr,
                                       std::move(done));
                else
                    sys.driver().read(off, len, nullptr,
                                      std::move(done));
            },
            fio);
        return job.run().mbps;
    };
    double cool = measureUncached(40.0);
    double hot = measureUncached(95.0);
    // Twice the refresh rate -> roughly twice the NVMC windows ->
    // materially faster uncached accesses.
    EXPECT_GT(hot, cool * 1.3);
}

// --- NVDIMM-F ---

struct NvdimmFFixture : public ::testing::Test
{
    NvdimmFFixture()
        : nand(eq, nvm::ZNandParams::tiny()),
          ftl(eq, nand, ftl::FtlConfig{}),
          map(64 * kMiB),
          dev(map, dram::Ddr4Timing::ddr4_1600(), false, false),
          bus(eq, dev, false),
          imc(eq, bus, imc::ImcConfig{}),
          drv(eq, ftl, imc, driver::NvdimmFConfig{})
    {
    }

    EventQueue eq;
    nvm::ZNand nand;
    ftl::Ftl ftl;
    dram::AddressMap map;
    dram::DramDevice dev;
    bus::MemoryBus bus;
    imc::Imc imc;
    driver::NvdimmFDriver drv;
};

TEST_F(NvdimmFFixture, BlockWriteReadRoundTrip)
{
    std::vector<std::uint8_t> w(8192), r(8192, 0);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = static_cast<std::uint8_t>(i * 3 + 1);
    bool done = false;
    drv.write(0x4000, 8192, w.data(), [&] { done = true; });
    while (!done && eq.runOne()) {
    }
    ASSERT_TRUE(done);
    done = false;
    drv.read(0x4000, 8192, r.data(), [&] { done = true; });
    while (!done && eq.runOne()) {
    }
    ASSERT_TRUE(done);
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 8192), 0);
}

TEST_F(NvdimmFFixture, EveryAccessPaysTheNand)
{
    // No DRAM cache: a re-read is exactly as slow as the first read.
    std::vector<std::uint8_t> w(4096, 0x5f);
    bool done = false;
    drv.write(0, 4096, w.data(), [&] { done = true; });
    while (!done && eq.runOne()) {
    }
    auto timed_read = [&] {
        Tick start = eq.now();
        bool rd = false;
        drv.read(0, 4096, nullptr, [&] { rd = true; });
        while (!rd && eq.runOne()) {
        }
        return eq.now() - start;
    };
    Tick first = timed_read();
    Tick second = timed_read();
    EXPECT_GE(first, nand.params().tR);
    EXPECT_NEAR(static_cast<double>(second),
                static_cast<double>(first),
                static_cast<double>(first) * 0.2);
}

TEST_F(NvdimmFFixture, RejectsSubBlockAccess)
{
    EXPECT_THROW(drv.read(64, 64, nullptr, [] {}), PanicError);
}

// --- NVDIMM-N ---

struct NvdimmNFixture : public ::testing::Test
{
    NvdimmNFixture()
        : map(4 * kMiB),
          dram(map, dram::Ddr4Timing::ddr4_1600(), true, false),
          bus(eq, dram, false),
          imc(eq, bus, imc::ImcConfig{}),
          cache(eq, imc, cpu::CpuCacheModel::Params{}),
          engine(eq, imc, &cache),
          nand(eq, nvm::ZNandParams::tiny())
    {
    }

    driver::NvdimmNDriver
    make(std::uint64_t energy_pages = 0)
    {
        driver::NvdimmNConfig cfg;
        cfg.backupEnergyPages = energy_pages;
        return driver::NvdimmNDriver(eq, engine, dram, nand, cfg);
    }

    void
    drive(std::function<void(std::function<void()>)> op)
    {
        bool done = false;
        op([&] { done = true; });
        while (!done && eq.runOne()) {
        }
        ASSERT_TRUE(done);
    }

    EventQueue eq;
    dram::AddressMap map;
    dram::DramDevice dram;
    bus::MemoryBus bus;
    imc::Imc imc;
    cpu::CpuCacheModel cache;
    cpu::MemcpyEngine engine;
    nvm::ZNand nand;
};

TEST_F(NvdimmNFixture, RunsAtDramSpeed)
{
    auto drv = make();
    Tick start = eq.now();
    drive([&](std::function<void()> cb) {
        drv.write(0, 4096, nullptr, std::move(cb));
    });
    eq.runFor(50 * kUs); // Drain the WPQ.
    Tick w = eq.now() - start;
    EXPECT_LT(w, 60 * kUs);
    EXPECT_EQ(nand.stats().pageReads.value(), 0u)
        << "runtime accesses never touch the NAND";
}

TEST_F(NvdimmNFixture, BackupAndRestoreRoundTrip)
{
    auto drv = make();
    std::vector<std::uint8_t> w(4096, 0x8a);
    drive([&](std::function<void()> cb) {
        drv.write(3 * 4096, 4096, w.data(), std::move(cb));
    });
    eq.runFor(100 * kUs); // WPQ drain into the array.

    std::uint64_t saved = drv.powerFailBackup();
    EXPECT_EQ(saved, drv.capacityBytes() / 4096);

    // Simulate a fresh boot: blank DRAM, restore from NAND.
    dram::DramDevice fresh(map, dram::Ddr4Timing::ddr4_1600(), true,
                           false);
    bus::MemoryBus fresh_bus(eq, fresh, false);
    imc::Imc fresh_imc(eq, fresh_bus, imc::ImcConfig{});
    cpu::CpuCacheModel fresh_cache(eq, fresh_imc,
                                   cpu::CpuCacheModel::Params{});
    cpu::MemcpyEngine fresh_engine(eq, fresh_imc, &fresh_cache);
    driver::NvdimmNConfig cfg;
    driver::NvdimmNDriver reborn(eq, fresh_engine, fresh, nand, cfg);
    EXPECT_GT(reborn.restore(), 0u);

    std::vector<std::uint8_t> r(4096, 0);
    bool done = false;
    reborn.read(3 * 4096, 4096, r.data(), [&] { done = true; });
    while (!done && eq.runOne()) {
    }
    EXPECT_EQ(r[0], 0x8a);
    EXPECT_EQ(r[4095], 0x8a);
}

TEST_F(NvdimmNFixture, SupercapBudgetLimitsBackup)
{
    auto drv = make(/*energy_pages=*/16);
    std::uint64_t saved = drv.powerFailBackup();
    EXPECT_EQ(saved, 16u);
    EXPECT_GT(drv.stats().pagesLostToEnergy.value(), 0u);
}

TEST_F(NvdimmNFixture, NandMustCoverTheDram)
{
    // A 64 MiB DRAM cannot be backed by the tiny 8 MiB NAND.
    dram::AddressMap big_map(64 * kMiB);
    dram::DramDevice big(big_map, dram::Ddr4Timing::ddr4_1600(), false,
                         false);
    driver::NvdimmNConfig cfg;
    EXPECT_THROW(
        driver::NvdimmNDriver(eq, engine, big, nand, cfg),
        FatalError);
}

// --- Clean-victim scan (prefetch support) ---

TEST(CleanVictim, AllDirtyMeansNoCleanVictim)
{
    driver::DramCache cache(4,
                            driver::ReplacementPolicy::create("lrc"));
    for (std::uint64_t p = 0; p < 4; ++p) {
        auto s = cache.allocate(p);
        cache.finishFill(s);
        cache.markDirty(s);
    }
    EXPECT_FALSE(cache.pickCleanVictim().has_value());
    // And the scan must not have corrupted the policy: a regular
    // victim pick still works.
    EXPECT_LT(cache.pickVictim(), 4u);
}

TEST(CleanVictim, FindsTheCleanOne)
{
    driver::DramCache cache(4,
                            driver::ReplacementPolicy::create("lrc"));
    for (std::uint64_t p = 0; p < 4; ++p) {
        auto s = cache.allocate(p);
        cache.finishFill(s);
        if (p != 2)
            cache.markDirty(s);
    }
    auto v = cache.pickCleanVictim();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(cache.slot(*v).devPage, 2u);
}

// --- System stats dump & bus tracer ---

TEST(StatsDump, EmitsAllLayers)
{
    auto sys = makeSystem();
    std::vector<std::uint8_t> buf(4096, 1);
    syncWrite(*sys, 0, 4096, buf.data());
    std::ostringstream os;
    sys->dumpStats(os);
    std::string out = os.str();
    for (const char* key :
         {"dram.refreshes", "imc.reads_accepted", "nvdc.page_faults",
          "cache.hit_rate", "fw.acks", "ftl.user_writes",
          "znand.page_programs", "bus.conflicts"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(BusTracerTest, RecordsAndBoundsCommands)
{
    auto sys = makeSystem();
    bus::BusTracer tracer(64);
    sys->bus().addSnooper(&tracer);
    sys->eq().runFor(100 * kUs); // A dozen refresh cycles.
    EXPECT_GE(tracer.count(dram::Ddr4Op::Refresh), 10u);
    EXPECT_LE(tracer.entries().size(), 64u);
    EXPECT_GE(tracer.totalObserved(), tracer.entries().size());

    std::ostringstream os;
    tracer.dump(os);
    EXPECT_NE(os.str().find("REF"), std::string::npos);
    tracer.clear();
    EXPECT_TRUE(tracer.entries().empty());
}

TEST(BusTracerTest, WindowInterleavingMatchesFig2b)
{
    // The retained trace around an uncached op must show the Fig 2b
    // pattern: REF, then NVMC commands strictly inside
    // [REF + device tRFC, REF + programmed tRFC).
    auto sys = makeSystem();
    sys->driver().markEverWritten(0, 4);
    bus::BusTracer tracer(4096);
    sys->bus().addSnooper(&tracer);
    std::vector<std::uint8_t> r(4096);
    syncRead(*sys, 0, 4096, r.data());

    Tick device_trfc = sys->dramDevice().timing().tRFC;
    Tick prog_trfc = sys->config().refresh.tRFC;
    Tick last_ref = 0;
    std::size_t nvmc_cmds = 0;
    for (const auto& e : tracer.entries()) {
        if (e.cmd.op == dram::Ddr4Op::Refresh) {
            last_ref = e.tick;
            continue;
        }
        if (last_ref == 0)
            continue;
        if (e.tick < last_ref + prog_trfc) {
            // Inside the programmed blackout: only the NVMC may
            // drive, and only after the device's real refresh.
            EXPECT_GE(e.tick, last_ref + device_trfc)
                << e.cmd.describe();
            ++nvmc_cmds;
        }
    }
    EXPECT_GT(nvmc_cmds, 0u);
}

} // namespace
} // namespace nvdimmc
