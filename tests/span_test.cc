/**
 * @file
 * Request-span layer tests (common/span.hh).
 *
 * Covers the observability tentpole:
 *  - deterministic span ids and the cursor-tiling attribution model
 *    (phase sums tile the end-to-end latency by construction);
 *  - the end-of-run auditor: leaked spans, unattributed residue,
 *    backwards marks and window-wait-cap violations all fail ok();
 *  - CP line transport: the span id survives encode/decode and rides
 *    the otherwise-unused word 4, so timing is span-agnostic;
 *  - zero-overhead-off: a full system run produces byte-identical
 *    stats with the span layer on vs. off;
 *  - a real cached run opens==closes thousands of spans, audits
 *    clean, and exports every op class it exercised;
 *  - trace integration: flow/async span events appear in the Chrome
 *    trace file, and the configurable capture cap drops+counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/span.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "core/system.hh"
#include "nvmc/cp_protocol.hh"
#include "workload/fio.hh"

namespace nvdimmc
{
namespace
{

/** Fresh, enabled span layer for one test; clean on the way out. */
struct SpanScope
{
    SpanScope()
    {
        span::enable();
        span::reset();
    }
    ~SpanScope()
    {
        span::reset();
        span::disable();
    }
};

std::string
breakdownJson()
{
    std::ostringstream os;
    span::writeBreakdownJson(os);
    return os.str();
}

// ---------------------------------------------------------------------
// Round-trip and attribution.

TEST(SpanRoundTrip, IdsAreChannelShiftedSequences)
{
    SpanScope scope;
    // Per-channel sequences start at 1 so no real span is ever id 0.
    EXPECT_EQ(span::open(0, 10, span::OpClass::Hit),
              (span::Id{0} << 48) | 1);
    EXPECT_EQ(span::open(0, 10, span::OpClass::Hit),
              (span::Id{0} << 48) | 2);
    EXPECT_EQ(span::open(3, 10, span::OpClass::Hit),
              (span::Id{3} << 48) | 1);
    EXPECT_EQ(span::openedCount(), 3u);
}

TEST(SpanRoundTrip, PhaseSumsTileEndToEnd)
{
    SpanScope scope;
    span::Id id = span::open(2, 100, span::OpClass::Write);
    span::phase(id, span::Phase::LockWait, 150);
    span::phase(id, span::Phase::Memcpy, 400);
    span::close(id, 400);

    span::AuditResult a = span::audit();
    EXPECT_TRUE(a.ok());
    EXPECT_EQ(a.opened, 1u);
    EXPECT_EQ(a.closed, 1u);

    // [100,150) -> lock_wait, [150,400) -> memcpy; the sums tile the
    // 300-tick end-to-end latency exactly, nothing unattributed.
    std::string json = breakdownJson();
    EXPECT_NE(json.find("\"write\":{\"spans\":1,\"e2e\":{\"count\":1,"
                        "\"sum_ps\":300"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"lock_wait\":{\"count\":1,\"sum_ps\":50"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"memcpy\":{\"count\":1,\"sum_ps\":250"),
              std::string::npos)
        << json;
}

TEST(SpanRoundTrip, ClassUpgradeIsMonotone)
{
    SpanScope scope;
    span::Id id = span::open(0, 0, span::OpClass::Hit);
    span::classify(id, span::OpClass::DirtyMiss);
    span::classify(id, span::OpClass::CleanMiss); // Downgrade ignored.
    span::close(id, 10);
    std::string json = breakdownJson();
    EXPECT_NE(json.find("\"dirty_miss\":{\"spans\":1"),
              std::string::npos);
    EXPECT_EQ(json.find("\"clean_miss\""), std::string::npos);
}

TEST(SpanRoundTrip, DisabledLayerIsInert)
{
    span::reset();
    ASSERT_FALSE(span::enabled());
    span::Id id = span::open(5, 100, span::OpClass::Write);
    EXPECT_EQ(id, 0u);
    // Every downstream call on id 0 must be a no-op, not a violation.
    span::classify(id, span::OpClass::DirtyMiss);
    span::phase(id, span::Phase::Memcpy, 200);
    span::close(id, 300);
    span::AuditResult a = span::audit();
    EXPECT_EQ(a.opened, 0u);
    EXPECT_EQ(a.orderViolations, 0u);
}

// ---------------------------------------------------------------------
// Auditor failure modes.

TEST(SpanAudit, CatchesLeakedSpan)
{
    SpanScope scope;
    span::Id ok = span::open(0, 0, span::OpClass::Hit);
    span::close(ok, 5);
    (void)span::open(0, 0, span::OpClass::Hit); // Deliberately leaked.
    span::AuditResult a = span::audit();
    EXPECT_EQ(a.opened, 2u);
    EXPECT_EQ(a.closed, 1u);
    EXPECT_EQ(a.leaked, 1u);
    EXPECT_FALSE(a.ok());
}

TEST(SpanAudit, FlagsUnattributedResidue)
{
    SpanScope scope;
    span::Id id = span::open(0, 0, span::OpClass::Hit);
    span::phase(id, span::Phase::CacheLookup, 10);
    // Close 90 ticks past the last mark: the residue lands in the
    // Unattributed pseudo-phase and must trip the one-tick budget.
    span::close(id, 100);
    span::AuditResult a = span::audit();
    EXPECT_EQ(a.unattributedSpans, 1u);
    EXPECT_EQ(a.maxUnattributed, Tick{90});
    EXPECT_FALSE(a.ok());
}

TEST(SpanAudit, CountsBackwardsMarks)
{
    SpanScope scope;
    span::Id id = span::open(0, 100, span::OpClass::Hit);
    span::phase(id, span::Phase::CacheLookup, 200);
    span::phase(id, span::Phase::LockWait, 150); // Runs backwards.
    span::close(id, 200);
    span::AuditResult a = span::audit();
    EXPECT_EQ(a.orderViolations, 1u);
    EXPECT_FALSE(a.ok());
}

TEST(SpanAudit, EnforcesWindowWaitCap)
{
    SpanScope scope;
    span::setWindowWaitCap(50);
    EXPECT_EQ(span::windowWaitCap(), Tick{50});
    span::Id id = span::open(0, 0, span::OpClass::CleanMiss);
    span::phase(id, span::Phase::WindowWait, 200); // 200 > cap 50.
    span::close(id, 200);
    span::AuditResult a = span::audit();
    EXPECT_EQ(a.windowWaitViolations, 1u);
    EXPECT_FALSE(a.ok());

    // Under the cap is fine.
    span::reset();
    span::setWindowWaitCap(50);
    id = span::open(0, 0, span::OpClass::CleanMiss);
    span::phase(id, span::Phase::WindowWait, 40);
    span::close(id, 40);
    EXPECT_TRUE(span::audit().ok());
}

// ---------------------------------------------------------------------
// CP line transport.

TEST(SpanCp, SpanIdSurvivesEncodeDecode)
{
    nvmc::CpCommand cmd;
    cmd.phase = 7;
    cmd.opcode = nvmc::CpOpcode::WritebackCachefill;
    cmd.dramSlot = 123;
    cmd.nandPage = 456;
    cmd.dramSlot2 = 789;
    cmd.nandPage2 = 1011;
    cmd.spanId = (span::Id{3} << 48) | 0xdeadbeef;

    std::uint8_t line[64];
    nvmc::encodeCpCommand(cmd, line);
    EXPECT_EQ(nvmc::decodeCpCommand(line), cmd);

    // Span 0 (layer off) must encode too: the line's bytes differ only
    // in word 4, never in length or timing-relevant layout.
    cmd.spanId = 0;
    nvmc::encodeCpCommand(cmd, line);
    EXPECT_EQ(nvmc::decodeCpCommand(line).spanId, 0u);
}

// ---------------------------------------------------------------------
// Whole-system behaviour.

/** Short single-queue fio run over a preconditioned system; returns
 *  the full stats dump (the spans-on/off comparison surface). The
 *  region is twice the cached page count so the run exercises hits
 *  AND the fault path (CP command -> NVMC -> FTL -> NAND). */
std::string
systemRun()
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = 2;
    core::NvdimmcSystem sys(cfg);
    const std::uint32_t pages = sys.totalSlotCount() - 64 * 2;
    sys.precondition(0, pages, true);

    workload::FioConfig fio;
    fio.pattern = workload::FioConfig::Pattern::RandWrite;
    fio.blockSize = 4096;
    fio.threads = 2;
    fio.regionBytes = std::uint64_t{pages} * 2 * 4096;
    fio.rampTime = 50 * kUs;
    fio.runTime = 500 * kUs;
    fio.seed = 42;
    workload::AccessFn fn = [&sys](Addr off, std::uint32_t len,
                                   bool is_write,
                                   std::function<void()> done) {
        if (is_write)
            sys.driver().write(off, len, nullptr, std::move(done));
        else
            sys.driver().read(off, len, nullptr, std::move(done));
    };
    workload::FioJob job(sys.eq(), fn, fio);
    workload::FioResult res = job.run();

    EXPECT_TRUE(sys.hardwareClean());
    std::ostringstream os;
    os.precision(17);
    os << res.mbps << " " << res.kiops << " " << res.ops << "\n";
    sys.dumpStats(os);
    return os.str();
}

TEST(SpanSystem, StatsByteIdenticalSpansOnVsOff)
{
    span::disable();
    span::reset();
    std::string off = systemRun();

    std::string on;
    {
        SpanScope scope;
        on = systemRun();
        EXPECT_GT(span::closedCount(), 0u);
    }
    // The layer only observes: the simulation must not move by a tick.
    EXPECT_EQ(off, on);
}

TEST(SpanSystem, RealRunAuditsCleanAndExportsClasses)
{
    SpanScope scope;
    systemRun();
    span::AuditResult a = span::audit();
    EXPECT_TRUE(a.ok());
    EXPECT_GT(a.opened, 100u);
    EXPECT_EQ(a.opened, a.closed);

    std::string json = breakdownJson();
    // A write-only run over a preconditioned region: every span is a
    // host write, and the export carries the full audit block.
    EXPECT_NE(json.find("\"write\":{\"spans\":"), std::string::npos);
    EXPECT_NE(json.find("\"audit\":{\"opened\":"), std::string::npos);

    std::ostringstream table;
    span::writeBreakdownTable(table, "span_test");
    EXPECT_NE(table.str().find("-- write:"), std::string::npos);
    EXPECT_NE(table.str().find("[ok]"), std::string::npos);
}

TEST(SpanSystem, RegisterStatsUsesLocalRegistryNames)
{
    SpanScope scope;
    span::Id id = span::open(0, 0, span::OpClass::Hit);
    span::phase(id, span::Phase::CacheLookup, 10);
    span::close(id, 10);

    StatRegistry local;
    span::registerStats(local, "span");
    std::ostringstream os;
    local.dump(os);
    EXPECT_NE(os.str().find("span.hit.e2e.count"), std::string::npos);
    EXPECT_NE(os.str().find("span.hit.cache_lookup.p99"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Trace integration.

std::string
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(SpanTrace, FlowAndAsyncEventsReachTraceFile)
{
    SpanScope scope;
    std::string path = testing::TempDir() + "/span_trace.json";
    trace::start(path);
    systemRun();
    ASSERT_TRUE(trace::stop());
    EXPECT_TRUE(span::audit().ok());

    std::string file = slurp(path);
    ASSERT_FALSE(file.empty());
    // Async op lanes and flow arrows, stitched across the span tracks.
    EXPECT_NE(file.find("\"cat\":\"span\""), std::string::npos);
    EXPECT_NE(file.find("\"cat\":\"spanflow\""), std::string::npos);
    EXPECT_NE(file.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(file.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(file.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(file.find("span.driver"), std::string::npos);
    EXPECT_NE(file.find("span.nvmc"), std::string::npos);
    std::remove(path.c_str());
}

TEST(SpanTrace, ConfigurableCapDropsAndCounts)
{
    std::string path = testing::TempDir() + "/span_cap_trace.json";
    trace::start(path, /*maxEvents=*/16);
    EXPECT_EQ(trace::maxEvents(), 16u);
    for (int i = 0; i < 100; ++i)
        trace::instant("cap.test", "tick", Tick(i));
    EXPECT_LE(trace::eventCount(), 16u);
    EXPECT_GT(trace::droppedCount(), 0u);
    ASSERT_TRUE(trace::stop());
    std::remove(path.c_str());
}

} // namespace
} // namespace nvdimmc
