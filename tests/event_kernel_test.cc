/**
 * @file
 * Tests for the intrusive event kernel: same-tick FIFO interleaving
 * of intrusive and one-shot events, in-place cancel/reschedule,
 * periodic self-rescheduling, lazy-deletion bookkeeping, and a
 * regression check that the one-shot (legacy-API shim) path and the
 * intrusive path drive a simulation to byte-identical stats.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/logging.hh"

namespace nvdimmc
{
namespace
{

/** Intrusive event that appends a tag to a shared trace. */
class TraceEvent : public Event
{
  public:
    TraceEvent(std::vector<int>& trace, int tag)
        : trace_(trace), tag_(tag)
    {
    }

    void process() override { trace_.push_back(tag_); }
    const char* name() const override { return "trace"; }

  private:
    std::vector<int>& trace_;
    int tag_;
};

TEST(EventKernel, IntrusiveAndCallbackShareFifoOrder)
{
    // Same-tick order is schedule order, regardless of event kind.
    EventQueue eq;
    std::vector<int> trace;
    TraceEvent a(trace, 0);
    TraceEvent b(trace, 2);
    eq.schedule(a, 100);
    eq.schedule(100, [&] { trace.push_back(1); });
    eq.schedule(b, 100);
    eq.schedule(100, [&] { trace.push_back(3); });
    eq.runAll();
    EXPECT_EQ(trace, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventKernel, DescheduleThenRescheduleInPlace)
{
    EventQueue eq;
    std::vector<int> trace;
    TraceEvent ev(trace, 7);

    eq.schedule(ev, 50);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 50u);

    eq.deschedule(ev);
    EXPECT_FALSE(ev.scheduled());
    eq.runUntil(60);
    EXPECT_TRUE(trace.empty());

    // The same object is reusable immediately, with no allocation.
    eq.schedule(ev, 80);
    eq.runAll();
    EXPECT_EQ(trace, std::vector<int>{7});
    EXPECT_EQ(eq.now(), 80u);
}

TEST(EventKernel, RescheduleMovesBothDirections)
{
    EventQueue eq;
    std::vector<int> trace;
    TraceEvent ev(trace, 1);

    eq.schedule(ev, 100);
    eq.reschedule(ev, 40); // Earlier: the stale 100-tick entry dies.
    eq.runUntil(50);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(eq.now(), 50u);

    eq.schedule(ev, 60);
    eq.reschedule(ev, 200); // Later: the stale 60-tick entry dies.
    eq.runUntil(150);
    EXPECT_EQ(trace.size(), 1u);
    eq.runAll();
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(eq.now(), 200u);
}

TEST(EventKernel, DoubleScheduleIsAPanic)
{
    EventQueue eq;
    std::vector<int> trace;
    TraceEvent ev(trace, 1);
    eq.schedule(ev, 10);
    EXPECT_THROW(eq.schedule(ev, 20), PanicError);
}

/** Periodic event: reschedules itself in place n times. */
class PeriodicEvent : public Event
{
  public:
    PeriodicEvent(EventQueue& eq, Tick period, int times)
        : eq_(eq), period_(period), left_(times)
    {
    }

    void
    process() override
    {
        ticks.push_back(eq_.now());
        if (--left_ > 0)
            eq_.scheduleAfter(*this, period_);
    }

    std::vector<Tick> ticks;

  private:
    EventQueue& eq_;
    Tick period_;
    int left_;
};

TEST(EventKernel, PeriodicSelfReschedule)
{
    EventQueue eq;
    PeriodicEvent refresh(eq, 7800, 5);
    eq.schedule(refresh, 7800);
    eq.runAll();
    EXPECT_EQ(refresh.ticks,
              (std::vector<Tick>{7800, 15600, 23400, 31200, 39000}));
    EXPECT_FALSE(refresh.scheduled());
    EXPECT_TRUE(eq.empty());
}

TEST(EventKernel, LazyDeletionNeverCountsCancelled)
{
    // pending()/empty() track live events only, even while cancelled
    // heap records are still unpopped.
    EventQueue eq;
    std::vector<int> trace;
    TraceEvent ev(trace, 0);
    eq.schedule(ev, 10);
    EventId id = eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);

    eq.deschedule(ev);
    EXPECT_EQ(eq.pending(), 1u);
    eq.cancel(id);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());

    // runUntil over a fully-cancelled queue fires nothing and still
    // lands now() on the target tick.
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(eq.eventsFired(), 0u);
    EXPECT_TRUE(trace.empty());
}

TEST(EventKernel, CancelledIdNeverAliasesALaterEvent)
{
    // The pooled slot behind a cancelled id is recycled, but the
    // generation stamp keeps the old id dead forever.
    EventQueue eq;
    bool late_fired = false;
    EventId a = eq.schedule(10, [&] { late_fired = true; });
    eq.cancel(a);
    int fires = 0;
    EventId b = eq.schedule(10, [&] { ++fires; });
    EXPECT_FALSE(eq.isPending(a));
    EXPECT_TRUE(eq.isPending(b));
    eq.cancel(a); // Still a no-op, even though the slot was reused.
    eq.runAll();
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(late_fired);
    EXPECT_FALSE(eq.isPending(b));
}

TEST(EventKernel, LargeCapturesSpillSafely)
{
    // Captures beyond the inline budget take the heap fallback; the
    // payload must arrive intact.
    EventQueue eq;
    std::array<std::uint64_t, 32> big{};
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = i * 3;
    std::uint64_t sum = 0;
    eq.schedule(5, [big, &sum] {
        for (auto v : big)
            sum += v;
    });
    eq.runAll();
    EXPECT_EQ(sum, 3u * (31u * 32u / 2u));
}

/**
 * The regression that guards the kernel rebuild: a toy simulation
 * (bursty producer, jittered service times, mid-flight cancels) run
 * once through the one-shot legacy-API shim and once through
 * intrusive events must produce byte-identical stats.
 */
std::string
runToySim(bool intrusive)
{
    EventQueue eq;
    std::ostringstream os;
    std::uint64_t served = 0;
    Tick last_service = 0;

    struct Server : Event
    {
        EventQueue& eq;
        std::uint64_t& served;
        Tick& last_service;
        Tick period;
        int left;

        Server(EventQueue& q, std::uint64_t& s, Tick& ls, Tick p, int n)
            : eq(q), served(s), last_service(ls), period(p), left(n)
        {
        }

        void
        process() override
        {
            ++served;
            last_service = eq.now();
            if (--left > 0)
                eq.scheduleAfter(*this, period);
        }
    };

    Server server(eq, served, last_service, 130, 40);
    std::function<void()> serve_shim = [&] {
        ++served;
        last_service = eq.now();
        if (--server.left > 0)
            eq.scheduleAfter(130, serve_shim);
    };

    if (intrusive)
        eq.schedule(server, 130);
    else
        eq.schedule(130, serve_shim);

    // Same-tick contention with the server plus cancel churn.
    for (int i = 0; i < 40; ++i) {
        Tick at = 130 * static_cast<Tick>(1 + i % 7);
        eq.schedule(at, [&served] { ++served; });
        EventId dead = eq.schedule(at, [&served] { served += 1000; });
        eq.cancel(dead);
    }

    eq.runAll();
    os << eq.now() << ":" << eq.eventsFired() << ":" << served << ":"
       << last_service;
    return os.str();
}

TEST(EventKernel, ShimAndIntrusiveRunsAreByteIdentical)
{
    std::string shim = runToySim(false);
    std::string intrusive = runToySim(true);
    EXPECT_EQ(shim, intrusive);
    EXPECT_NE(shim.find(":"), std::string::npos);
}

/**
 * Differential fuzz: a random stream of schedule / cancel /
 * reschedule / scheduleBatch / bounded-run operations executed on the
 * timing wheel must dispatch in exactly the order a reference
 * (tick, seq) min-scan produces. The reference mirrors the kernel's
 * contract directly — one shared sequence counter stamped in program
 * order, lazy cancellation, runUntil inclusive vs runWindow exclusive
 * bounds — so any wheel bug (cascade ordering, front-slot demotion,
 * memo staleness, bound handling) shows up as an order divergence.
 */
TEST(EventKernel, DifferentialFuzzAgainstReferenceOrder)
{
    struct RefEntry
    {
        Tick when;
        std::uint64_t seq;
        int label;
        bool live;
    };

    for (std::uint64_t seed :
         {std::uint64_t{1}, std::uint64_t{0xdeadbeef},
          std::uint64_t{0x5eed5eed5eed}}) {
        std::uint64_t rng = seed;
        auto rnd = [&rng] {
            rng = rng * 6364136223846793005ull + 1442695040888963407ull;
            return rng >> 11;
        };

        EventQueue eq;
        std::vector<int> real_order, ref_order;
        std::vector<RefEntry> entries;
        Tick ref_now = 0;
        std::uint64_t ref_seq = 1;

        auto ref_best = [&]() -> std::size_t {
            std::size_t best = entries.size();
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (!entries[i].live)
                    continue;
                if (best == entries.size() ||
                    entries[i].when < entries[best].when ||
                    (entries[i].when == entries[best].when &&
                     entries[i].seq < entries[best].seq))
                    best = i;
            }
            return best;
        };
        auto ref_run = [&](Tick until, bool strict) {
            for (;;) {
                std::size_t b = ref_best();
                if (b == entries.size())
                    break;
                if (strict ? entries[b].when >= until
                           : entries[b].when > until)
                    break;
                entries[b].live = false;
                ref_order.push_back(entries[b].label);
            }
            ref_now = until;
        };

        // Cancelable one-shots: (id from the real queue, ref index).
        std::vector<std::pair<EventId, std::size_t>> shots;
        // Intrusive events that get rescheduled in place.
        constexpr int kWrappers = 8;
        std::vector<std::unique_ptr<EventFunctionWrapper>> wrappers;
        std::size_t wrapper_ref[kWrappers];
        for (int w = 0; w < kWrappers; ++w) {
            wrappers.push_back(std::make_unique<EventFunctionWrapper>(
                [&real_order, w] { real_order.push_back(10000 + w); },
                "fuzz-wrapper"));
            wrapper_ref[w] = ~std::size_t{0};
        }

        auto rand_delta = [&]() -> Tick {
            switch (rnd() % 8) {
            case 0:
            case 1:
            case 2:
                return rnd() % 64; // In-block (level 0).
            case 3:
            case 4:
                return rnd() % 4096; // Level-1 cascades.
            case 5:
                return rnd() % 262144; // Level-2 cascades.
            case 6:
                return rnd() % (Tick{1} << 30); // Deep levels.
            default:
                return 0; // Same-tick pileup.
            }
        };

        int next_label = 0;
        for (int op = 0; op < 1500; ++op) {
            ASSERT_EQ(eq.now(), ref_now) << "seed " << seed;
            switch (rnd() % 16) {
            case 0:
            case 1:
            case 2:
            case 3:
            case 4:
            case 5: { // One-shot schedule.
                Tick when = ref_now + rand_delta();
                int label = next_label++;
                EventId id = eq.schedule(
                    when, [&real_order, label] {
                        real_order.push_back(label);
                    });
                entries.push_back({when, ref_seq++, label, true});
                shots.push_back({id, entries.size() - 1});
                break;
            }
            case 6:
            case 7: { // Cancel (possibly already fired: no-op).
                if (shots.empty())
                    break;
                auto& [id, ri] = shots[rnd() % shots.size()];
                eq.cancel(id);
                entries[ri].live = false;
                break;
            }
            case 8:
            case 9: { // Intrusive reschedule (in place).
                int w = static_cast<int>(rnd() % kWrappers);
                Tick when = ref_now + rand_delta();
                eq.reschedule(*wrappers[static_cast<std::size_t>(w)],
                              when);
                if (wrapper_ref[w] != ~std::size_t{0})
                    entries[wrapper_ref[w]].live = false;
                entries.push_back({when, ref_seq++, 10000 + w, true});
                wrapper_ref[w] = entries.size() - 1;
                break;
            }
            case 10: { // Staged batch.
                std::vector<EventQueue::TimedCallback> batch;
                Tick at = ref_now + rnd() % 200;
                std::size_t n = 1 + rnd() % 6;
                for (std::size_t i = 0; i < n; ++i) {
                    at += rnd() % 40;
                    int label = next_label++;
                    batch.push_back({at,
                                     [&real_order, label] {
                                         real_order.push_back(label);
                                     },
                                     0});
                    entries.push_back({at, ref_seq++, label, true});
                }
                eq.scheduleBatch(batch);
                break;
            }
            case 11: { // Peek must agree with the reference minimum.
                std::size_t b = ref_best();
                Tick want =
                    b == entries.size() ? kTickNever : entries[b].when;
                ASSERT_EQ(eq.peekNextTick(), want) << "seed " << seed;
                break;
            }
            case 12:
            case 13: { // Inclusive bounded run.
                Tick until = ref_now + rnd() % 300;
                eq.runUntil(until);
                ref_run(until, /*strict=*/false);
                break;
            }
            default: { // Exclusive window (the shard primitive).
                Tick end = ref_now + rnd() % 300;
                eq.runWindow(end);
                ref_run(end, /*strict=*/true);
                break;
            }
            }
        }

        eq.runAll();
        for (;;) { // Drain the reference completely.
            std::size_t b = ref_best();
            if (b == entries.size())
                break;
            entries[b].live = false;
            ref_order.push_back(entries[b].label);
        }

        ASSERT_EQ(real_order, ref_order) << "seed " << seed;
        EXPECT_TRUE(eq.empty()) << "seed " << seed;
    }
}

} // namespace
} // namespace nvdimmc
