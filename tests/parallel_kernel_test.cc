/**
 * @file
 * Parallel-in-time kernel tests.
 *
 * Covers the sharded execution refactor:
 *  - EventQueue::runWindow / peekNextTick window primitives;
 *  - ShardCoordinator mechanics: deterministic channel->host merge
 *    order, idle jumps, and the conservative-quantum runtime checker;
 *  - the quantum properties the design promises: the auto-derived
 *    quantum never exceeds any cross-channel latency term, shrinking
 *    it never changes results, and growing it past the bound panics;
 *  - whole-system bit-exactness: a 4-channel fio run produces
 *    byte-identical stats (and trace files) for every --threads value;
 *  - the shard-audit regressions: the tracer's global capture buffer
 *    is safe and canonical under concurrent recording, Rng instances
 *    share no hidden state, SimMutex wake order is schedule-free.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/shard.hh"
#include "common/sim_mutex.hh"
#include "common/span.hh"
#include "common/trace.hh"
#include "core/system.hh"
#include "workload/fio.hh"

namespace nvdimmc
{
namespace
{

// ---------------------------------------------------------------------
// EventQueue window primitives.

TEST(RunWindow, FiresStrictlyBeforeEndAndAdvances)
{
    EventQueue eq;
    std::vector<int> fired;
    eq.schedule(Tick{10}, [&] { fired.push_back(10); });
    eq.schedule(Tick{99}, [&] { fired.push_back(99); });
    eq.schedule(Tick{100}, [&] { fired.push_back(100); });
    eq.schedule(Tick{150}, [&] { fired.push_back(150); });

    eq.runWindow(100);
    // The right edge is exclusive: the tick-100 event belongs to the
    // next window.
    EXPECT_EQ(fired, (std::vector<int>{10, 99}));
    EXPECT_EQ(eq.now(), Tick{100});

    eq.runWindow(101);
    EXPECT_EQ(fired, (std::vector<int>{10, 99, 100}));
    EXPECT_EQ(eq.now(), Tick{101});
}

TEST(RunWindow, AdvancesOverEmptyQueue)
{
    EventQueue eq;
    EXPECT_EQ(eq.peekNextTick(), kTickNever);
    eq.runWindow(5000);
    EXPECT_EQ(eq.now(), Tick{5000});
}

TEST(RunWindow, PeekSkipsCancelledEvents)
{
    EventQueue eq;
    EventId id = eq.schedule(Tick{10}, [] {});
    eq.schedule(Tick{20}, [] {});
    EXPECT_EQ(eq.peekNextTick(), Tick{10});
    eq.cancel(id);
    EXPECT_EQ(eq.peekNextTick(), Tick{20});
}

// ---------------------------------------------------------------------
// Staged-batch admission (the batched mailbox-delivery lane).

TEST(ScheduleBatch, EmptyBatchIsANoOpAndWindowStillAdvances)
{
    EventQueue eq;
    std::vector<EventQueue::TimedCallback> batch;
    eq.scheduleBatch(batch);
    EXPECT_EQ(eq.peekNextTick(), kTickNever);
    eq.runWindow(500); // Empty window: pure clock advance.
    EXPECT_EQ(eq.now(), Tick{500});
}

TEST(ScheduleBatch, RespectsTheExclusiveWindowEdge)
{
    EventQueue eq;
    std::vector<int> fired;
    std::vector<EventQueue::TimedCallback> batch;
    batch.push_back({Tick{99}, [&] { fired.push_back(99); }, 0});
    batch.push_back({Tick{100}, [&] { fired.push_back(100); }, 0});
    eq.scheduleBatch(batch);
    // A staged event exactly on the boundary belongs to the next
    // window, same as a heap event.
    eq.runWindow(100);
    EXPECT_EQ(fired, (std::vector<int>{99}));
    EXPECT_EQ(eq.now(), Tick{100});
    eq.runWindow(101);
    EXPECT_EQ(fired, (std::vector<int>{99, 100}));
}

TEST(ScheduleBatch, MergesWithHeapInScheduleOrderAtSameTick)
{
    EventQueue eq;
    std::vector<std::string> fired;
    eq.schedule(Tick{50}, [&] { fired.push_back("heap-first"); });
    std::vector<EventQueue::TimedCallback> batch;
    batch.push_back({Tick{40}, [&] { fired.push_back("batch40"); }, 0});
    batch.push_back({Tick{50}, [&] { fired.push_back("batch50"); }, 0});
    eq.scheduleBatch(batch);
    eq.schedule(Tick{50}, [&] { fired.push_back("heap-last"); });
    eq.schedule(Tick{30}, [&] { fired.push_back("heap30"); });
    eq.runAll();
    // Ticks ascend; within a tick, global schedule order (heap or
    // staged) wins — exactly what per-message scheduling produced.
    EXPECT_EQ(fired, (std::vector<std::string>{"heap30", "batch40",
                                               "heap-first", "batch50",
                                               "heap-last"}));
}

TEST(ScheduleBatch, KeepsPostOrderWithinATickAndAcrossBatches)
{
    EventQueue eq;
    std::vector<int> fired;
    std::vector<EventQueue::TimedCallback> a, b;
    a.push_back({Tick{10}, [&] { fired.push_back(1); }, 0});
    a.push_back({Tick{10}, [&] { fired.push_back(2); }, 0});
    b.push_back({Tick{10}, [&] { fired.push_back(3); }, 0});
    b.push_back({Tick{20}, [&] { fired.push_back(4); }, 0});
    eq.scheduleBatch(a);
    eq.scheduleBatch(b);
    eq.runAll();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ScheduleBatch, ReentrantBatchFromAStagedCallbackIsSafe)
{
    EventQueue eq;
    std::vector<int> fired;
    std::vector<EventQueue::TimedCallback> outer;
    outer.push_back({Tick{10}, [&] {
        fired.push_back(1);
        // Re-enter scheduleBatch from inside a staged callback; the
        // queue must survive its stage vector mutating under it.
        std::vector<EventQueue::TimedCallback> inner;
        inner.push_back({Tick{15}, [&] { fired.push_back(2); }, 0});
        eq.scheduleBatch(inner);
    }, 0});
    outer.push_back({Tick{20}, [&] { fired.push_back(3); }, 0});
    eq.scheduleBatch(outer);
    eq.runAll();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(ScheduleBatch, RecyclesTheDeliveryBuffer)
{
    EventQueue eq;
    std::vector<EventQueue::TimedCallback> batch;
    batch.reserve(64);
    batch.push_back({Tick{10}, [] {}, 0});
    eq.scheduleBatch(batch);
    // The queue takes the storage and hands back an empty buffer the
    // caller can refill (possibly a recycled one from an earlier,
    // already-drained batch).
    EXPECT_TRUE(batch.empty());
    eq.runAll();
    batch.push_back({Tick{20}, [] {}, 0});
    eq.scheduleBatch(batch);
    eq.runAll();
    EXPECT_EQ(eq.now(), Tick{20});
}

TEST(ScheduleBatch, RejectsPastStampsAndUnsortedBatches)
{
    EventQueue eq;
    eq.schedule(Tick{100}, [] {});
    eq.runAll();
    ASSERT_EQ(eq.now(), Tick{100});
    std::vector<EventQueue::TimedCallback> past;
    past.push_back({Tick{50}, [] {}, 0});
    EXPECT_THROW(eq.scheduleBatch(past), PanicError);
    std::vector<EventQueue::TimedCallback> unsorted;
    unsorted.push_back({Tick{300}, [] {}, 0});
    unsorted.push_back({Tick{200}, [] {}, 0});
    EXPECT_THROW(eq.scheduleBatch(unsorted), PanicError);
}

// ---------------------------------------------------------------------
// ShardCoordinator mechanics.

/** Fixture pieces: a host queue and two shard queues under a
 *  coordinator with quantum 100. */
struct CoordRig
{
    EventQueue host;
    EventQueue s0, s1;
    ShardCoordinator coord;

    explicit CoordRig(unsigned executors)
        : coord(host, {&s0, &s1}, /*quantum=*/100, executors)
    {
        host.setCoordinator(&coord);
    }
};

/** Channel->host messages must interleave as (tick, shard index,
 *  post order) no matter which worker ran which shard. */
void
mergeOrderRun(unsigned executors, std::vector<std::string>& order)
{
    CoordRig rig(executors);
    // Both shards post host messages for the *same* host ticks; shard
    // 1 schedules its generating events earlier in wall-clock terms
    // (lower shard tick) to tempt a naive merge into reordering.
    rig.s1.schedule(Tick{5}, [&] {
        rig.coord.postToHost(1, 300, [&] { order.push_back("s1a"); });
        rig.coord.postToHost(1, 200, [&] { order.push_back("s1b"); });
    });
    rig.s0.schedule(Tick{50}, [&] {
        rig.coord.postToHost(0, 300, [&] { order.push_back("s0a"); });
        rig.coord.postToHost(0, 200, [&] { order.push_back("s0b"); });
    });
    rig.host.runUntil(1000);
    EXPECT_EQ(rig.host.now(), Tick{1000});
    EXPECT_EQ(rig.s0.now(), Tick{1000});
    EXPECT_EQ(rig.s1.now(), Tick{1000});
}

TEST(ShardCoordinator, MergeOrderIsTickThenShardThenPostOrder)
{
    std::vector<std::string> serial, parallel;
    mergeOrderRun(1, serial);
    mergeOrderRun(2, parallel);
    // Tick 200 first; within a tick shard 0 before shard 1; within a
    // shard, post order.
    EXPECT_EQ(serial, (std::vector<std::string>{"s0b", "s1b", "s0a",
                                                "s1a"}));
    EXPECT_EQ(parallel, serial);
}

TEST(ShardCoordinator, HostToShardDeliveryAndIdleJump)
{
    CoordRig rig(2);
    std::vector<Tick> fired;
    rig.coord.postToShard(0, Tick{1'000'000},
                          [&] { fired.push_back(rig.s0.now()); });
    // One idle jump covers the whole gap: no window churn while the
    // only event is far away.
    rig.host.runUntil(999'999);
    EXPECT_TRUE(fired.empty());
    std::uint64_t windows_before = rig.coord.windows();
    rig.host.runUntil(1'000'200);
    EXPECT_EQ(fired, (std::vector<Tick>{1'000'000}));
    EXPECT_LE(rig.coord.windows() - windows_before, 2u);
}

TEST(ShardCoordinator, RuntimeCheckerTripsInsideWindow)
{
    CoordRig rig(1);
    // A host event that posts a cross-shard message *inside* the
    // current sync window models a latency path shorter than the
    // quantum — exactly what the conservative checker must catch.
    rig.host.schedule(Tick{10}, [&] {
        rig.coord.postToShard(0, rig.host.now() + 1, [] {});
    });
    EXPECT_THROW(rig.host.runUntil(500), PanicError);
}

TEST(ShardCoordinator, ShardExceptionPropagatesAndStaysRunnable)
{
    CoordRig rig(2);
    rig.s0.schedule(Tick{10}, [] { panic("shard boom"); });
    EXPECT_THROW(rig.host.runUntil(500), PanicError);
    // The coordinator must be reusable after the throw (the error
    // slot and inRound flag are cleared).
    std::vector<int> fired;
    rig.coord.postToShard(1, rig.s1.now() + 200,
                          [&] { fired.push_back(1); });
    rig.host.runUntil(rig.host.now() + 1000);
    EXPECT_EQ(fired, (std::vector<int>{1}));
}

// ---------------------------------------------------------------------
// Adaptive lookahead (per-link promises).

TEST(Lookahead, QuietPromiseCollapsesWindowsToOne)
{
    CoordRig rig(1);
    // Shard 0 runs internal-only events spread far wider than the
    // quantum; its link honestly promises nothing is in flight.
    std::vector<Tick> fired;
    for (Tick t : {Tick{10}, Tick{300}, Tick{600}, Tick{900}})
        rig.s0.schedule(t, [&, t] { fired.push_back(t); });
    rig.coord.setLink(0, ShardCoordinator::kToHost, 100,
                      [] { return kTickNever; });
    rig.host.runUntil(1000);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 300, 600, 900}));
    // Without the promise this takes one window per event cluster;
    // with it the round runs straight to the target.
    EXPECT_EQ(rig.coord.windows(), 1u);
}

TEST(Lookahead, StaticQuantumNeedsAWindowPerCluster)
{
    // Control for the test above: same event pattern, no promise.
    CoordRig rig(1);
    std::vector<Tick> fired;
    for (Tick t : {Tick{10}, Tick{300}, Tick{600}, Tick{900}})
        rig.s0.schedule(t, [&, t] { fired.push_back(t); });
    rig.host.runUntil(1000);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 300, 600, 900}));
    EXPECT_EQ(rig.coord.windows(), 4u);
}

TEST(Lookahead, FinitePromiseRaisesTheBoundOnly)
{
    // A promise of "nothing before tick 450" widens early windows but
    // never shrinks the static peek+latency bound (max, not replace).
    CoordRig rig(1);
    std::vector<Tick> fired;
    for (Tick t : {Tick{10}, Tick{300}, Tick{600}, Tick{900}})
        rig.s0.schedule(t, [&, t] { fired.push_back(t); });
    rig.coord.setLink(0, ShardCoordinator::kToHost, 100,
                      [] { return Tick{450}; });
    rig.host.runUntil(1000);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 300, 600, 900}));
    // Window 1 ends at 450 (fires 10 and 300), then 600+100, then
    // 900+100 capped at the target: three windows, not four.
    EXPECT_EQ(rig.coord.windows(), 3u);
}

TEST(Lookahead, UnsoundPromiseTripsTheCheckerMidWindow)
{
    // The link claims it is quiet forever, but the shard emits a
    // message anyway. The extended window must not silently corrupt
    // time: the conservative runtime checker catches the stamp landing
    // inside the in-flight window.
    CoordRig rig(1);
    rig.coord.setLink(0, ShardCoordinator::kToHost, 100,
                      [] { return kTickNever; });
    rig.s0.schedule(Tick{10}, [&] {
        rig.coord.postToHost(0, rig.s0.now() + 100, [] {});
    });
    EXPECT_THROW(rig.host.runUntil(1000), PanicError);
}

// ---------------------------------------------------------------------
// Quantum properties.

TEST(QuantumBound, NeverExceedsAnyLatencyTerm)
{
    for (std::uint32_t channels : {1u, 2u, 4u, 8u}) {
        for (bool stagger : {false, true}) {
            for (Tick link : {10 * kNs, 200 * kNs, 5 * kUs}) {
                core::SystemConfig cfg = core::SystemConfig::scaledTest();
                cfg.channels = channels;
                cfg.staggerRefresh = stagger;
                cfg.hostLinkLatency = link;
                Tick q = core::NvdimmcSystem::quantumBound(cfg);
                EXPECT_GE(q, Tick{1});
                EXPECT_LE(q, cfg.hostLinkLatency);
                EXPECT_LE(q, cfg.driver.cpWriteCost);
                if (stagger && channels > 1) {
                    EXPECT_LE(q, cfg.refresh.tREFI / channels);
                }
            }
        }
    }
}

/** One short sharded fio run; returns the full text stats dump. */
std::string
shardedRun(std::uint32_t channels, std::uint32_t threads,
           Tick quantum_override = 0, const char* trace_path = nullptr,
           bool media_shards = true)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = channels;
    cfg.threads = threads;
    cfg.quantumOverride = quantum_override;
    cfg.mediaShards = media_shards;
    core::NvdimmcSystem sys(cfg);
    const std::uint32_t slots = sys.totalSlotCount();
    const std::uint32_t pages = slots - 64 * channels;
    sys.precondition(0, pages, true);

    if (trace_path)
        trace::start(trace_path);

    workload::FioConfig fio;
    fio.pattern = workload::FioConfig::Pattern::RandWrite;
    fio.blockSize = 4096;
    fio.threads = 2;
    fio.regionBytes = std::uint64_t{pages} * 4096;
    fio.rampTime = 50 * kUs;
    fio.runTime = 500 * kUs;
    fio.seed = 42;
    workload::AccessFn fn = [&sys](Addr off, std::uint32_t len,
                                   bool is_write,
                                   std::function<void()> done) {
        if (is_write)
            sys.driver().write(off, len, nullptr, std::move(done));
        else
            sys.driver().read(off, len, nullptr, std::move(done));
    };
    workload::FioJob job(sys.eq(), fn, fio);
    workload::FioResult res = job.run();

    if (trace_path) {
        EXPECT_TRUE(trace::stop());
    }

    EXPECT_TRUE(sys.hardwareClean());
    std::ostringstream os;
    os.precision(17);
    os << res.mbps << " " << res.kiops << " " << res.ops << "\n";
    sys.dumpStats(os);
    return os.str();
}

TEST(ParallelDeterminism, ByteIdenticalAcrossThreadCounts)
{
    std::string t1 = shardedRun(4, 1);
    std::string t2 = shardedRun(4, 2);
    std::string t4 = shardedRun(4, 4);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t4);
    EXPECT_NE(t1.find("cache.hits"), std::string::npos);
}

TEST(ParallelDeterminism, SingleChannelSharded)
{
    EXPECT_EQ(shardedRun(1, 1), shardedRun(1, 4));
}

TEST(ParallelDeterminism, MediaShardsWithThreadsBeyondChannels)
{
    // With the media split a 2-channel machine has 4 shards, so
    // thread counts above the channel count are meaningful executor
    // counts, not clamps. Results must stay byte-identical right
    // through that regime (and past the shard count).
    std::string t1 = shardedRun(2, 1);
    EXPECT_EQ(t1, shardedRun(2, 3));
    EXPECT_EQ(t1, shardedRun(2, 4));
    EXPECT_EQ(t1, shardedRun(2, 8));
}

TEST(ParallelDeterminism, MediaSplitOffIsStillDeterministic)
{
    // The classic shard-per-channel topology stays available behind
    // cfg.mediaShards and keeps its own determinism guarantee.
    EXPECT_EQ(shardedRun(2, 1, 0, nullptr, false),
              shardedRun(2, 4, 0, nullptr, false));
}

TEST(QuantumShrink, NeverChangesResults)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = 2;
    Tick bound = core::NvdimmcSystem::quantumBound(cfg);
    ASSERT_GE(bound, Tick{7});
    std::string base = shardedRun(2, 2);
    EXPECT_EQ(base, shardedRun(2, 2, bound / 3));
    EXPECT_EQ(base, shardedRun(2, 2, bound / 7));
}

TEST(QuantumGrow, PastBoundPanicsAtConstruction)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = 2;
    cfg.threads = 2;
    cfg.quantumOverride = 2 * core::NvdimmcSystem::quantumBound(cfg);
    EXPECT_THROW(core::NvdimmcSystem sys(cfg), PanicError);
}

// ---------------------------------------------------------------------
// Stats metadata.

TEST(StatsMeta, ShardedJsonCarriesMetaTextDoesNot)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = 2;
    cfg.threads = 2;
    core::NvdimmcSystem sys(cfg);

    std::ostringstream json, text;
    sys.dumpStatsJson(json);
    sys.dumpStats(text);
    EXPECT_NE(json.str().find("\"_meta\":{\"threads\":"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"quantum_ticks\":"), std::string::npos);
    // Z-NAND media split: 2 channels -> 4 shards, and the media pair's
    // own quantum is reported alongside the DDR one.
    EXPECT_NE(json.str().find("\"shards\":4"), std::string::npos);
    EXPECT_NE(json.str().find("\"media_shards\":1"), std::string::npos);
    EXPECT_NE(json.str().find("\"media_quantum_ticks\":"),
              std::string::npos);
    EXPECT_EQ(text.str().find("_meta"), std::string::npos);
    EXPECT_EQ(text.str().find("threads"), std::string::npos);
}

TEST(StatsMeta, MediaSplitOffReportsChannelShards)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = 2;
    cfg.threads = 2;
    cfg.mediaShards = false;
    core::NvdimmcSystem sys(cfg);
    std::ostringstream json;
    sys.dumpStatsJson(json);
    EXPECT_NE(json.str().find("\"shards\":2"), std::string::npos);
    EXPECT_NE(json.str().find("\"media_shards\":0"), std::string::npos);
    EXPECT_EQ(json.str().find("media_quantum_ticks"),
              std::string::npos);
}

TEST(StatsMeta, ClassicJsonHasNoMeta)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    core::NvdimmcSystem sys(cfg);
    std::ostringstream json;
    sys.dumpStatsJson(json);
    EXPECT_EQ(json.str().find("_meta"), std::string::npos);
}

// ---------------------------------------------------------------------
// Shard-audit regressions (hidden global state).

std::string
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(TraceShardAudit, ByteIdenticalTraceAcrossThreadCounts)
{
    std::string p1 = testing::TempDir() + "/shard_trace_t1.json";
    std::string p4 = testing::TempDir() + "/shard_trace_t4.json";
    shardedRun(4, 1, 0, p1.c_str());
    shardedRun(4, 4, 0, p4.c_str());
    std::string f1 = slurp(p1);
    std::string f4 = slurp(p4);
    ASSERT_FALSE(f1.empty());
    EXPECT_EQ(f1, f4);
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

/** shardedRun with the span layer on; returns the breakdown JSON. */
std::string
spanBreakdownRun(std::uint32_t channels, std::uint32_t threads)
{
    span::enable();
    span::reset();
    shardedRun(channels, threads);
    EXPECT_TRUE(span::audit().ok());
    std::ostringstream os;
    span::writeBreakdownJson(os);
    span::reset();
    span::disable();
    return os.str();
}

TEST(SpanShardAudit, BreakdownJsonByteIdenticalAcrossThreadCounts)
{
    // Spans open and close on the host shard, whose event order is
    // executor-count-invariant, so the exact-integer JSON export must
    // match byte for byte — the --latency-breakdown determinism
    // guarantee.
    std::string t1 = spanBreakdownRun(4, 1);
    std::string t4 = spanBreakdownRun(4, 4);
    EXPECT_EQ(t1, t4);
    EXPECT_NE(t1.find("\"classes\":{"), std::string::npos);
    EXPECT_NE(t1.find("\"write\":{\"spans\":"), std::string::npos);
}

TEST(RngShardAudit, InstancesShareNoState)
{
    // Interleaved draws from two same-seed generators must equal an
    // isolated run of one: any hidden global state would skew them.
    Rng a(7, 3), b(7, 3), ref(7, 3);
    std::vector<std::uint32_t> interleaved_a, isolated;
    for (int i = 0; i < 64; ++i) {
        interleaved_a.push_back(a.next());
        (void)b.next();
    }
    for (int i = 0; i < 64; ++i)
        isolated.push_back(ref.next());
    EXPECT_EQ(interleaved_a, isolated);
}

TEST(SimMutexShardAudit, WakeOrderIsScheduleFree)
{
    // Two identical contention patterns must grant in the same order:
    // the deferred-grant event ordering is part of the deterministic
    // surface the sharded kernel relies on.
    auto run = [] {
        EventQueue eq;
        SimMutex m(eq);
        std::vector<int> order;
        for (int i = 0; i < 4; ++i) {
            eq.schedule(Tick{10}, [&eq, &m, &order, i] {
                m.acquire([&eq, &m, &order, i] {
                    order.push_back(i);
                    eq.scheduleAfter(5, [&m] { m.release(); });
                });
            });
        }
        eq.runAll();
        return order;
    };
    std::vector<int> first = run();
    EXPECT_EQ(first, run());
    EXPECT_EQ(first, (std::vector<int>{0, 1, 2, 3}));
}

} // namespace
} // namespace nvdimmc
