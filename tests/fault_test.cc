/**
 * @file
 * Fault-injection engine tests: power-fail campaigns (determinism +
 * integrity), the dirty-miss power-fail window, media-fault and ageing
 * campaigns, device checkpoint/restore, NVDIMM-N energy budgets, and
 * regression pins for the latent bugs the injector flushed out.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "core/power.hh"
#include "core/system.hh"
#include "core/system_config.hh"
#include "cpu/cache_model.hh"
#include "cpu/memcpy_engine.hh"
#include "dram/channel_interleave.hh"
#include "driver/nvdimmn_driver.hh"
#include "fault/campaign.hh"
#include "fault/checkpoint.hh"
#include "fault/fault.hh"
#include "ftl/ftl.hh"
#include "nvm/znand.hh"
#include "workload/mixedload.hh"

using namespace nvdimmc;
using core::NvdimmcSystem;
using core::SystemConfig;

namespace
{

/** Drive one FTL op to completion on a standalone rig. */
template <typename Issue>
void
drive(EventQueue& eq, Issue&& issue)
{
    bool done = false;
    issue([&] { done = true; });
    eq.runAll();
    ASSERT_TRUE(done);
}

ftl::FtlConfig
tinyFtlConfig()
{
    ftl::FtlConfig fc;
    fc.exposedFraction = 100.0 / 128.0;
    fc.gcLowWaterBlocks = 2;
    fc.gcHighWaterBlocks = 4;
    return fc;
}

} // namespace

// --- Power-fail campaign: determinism and integrity ---

TEST(FaultPowerFail, CommittedRecordsSurviveAnyCutTick)
{
    // Satellite: power-fail at 64 Rng-chosen ticks; mixedload's
    // committed-record oracle must validate post-recovery, and the
    // campaign fingerprint must be byte-identical across --threads.
    fault::PowerFailCampaignConfig base;
    base.seed = 7;
    fault::PowerFailCampaignResult full = runPowerFailCampaign(base);
    ASSERT_FALSE(full.halted);
    ASSERT_GT(full.workloadElapsed, 0u);
    ASSERT_EQ(full.corruptRecords, 0u);

    Rng tick_rng(0xFA17, 64);
    Tick lo = full.workloadElapsed / 20;
    Tick span = full.workloadElapsed - 2 * lo;
    for (int i = 0; i < 64; ++i) {
        fault::PowerFailCampaignConfig cfg = base;
        cfg.haltAtTick = lo + tick_rng.below(span);
        cfg.threads = 1;
        fault::PowerFailCampaignResult t1 = runPowerFailCampaign(cfg);
        cfg.threads = 2;
        fault::PowerFailCampaignResult t2 = runPowerFailCampaign(cfg);

        EXPECT_EQ(t1.fingerprint, t2.fingerprint)
            << "tick " << cfg.haltAtTick
            << ": campaign diverged across --threads";
        EXPECT_EQ(t1.liveValidationFailures, 0u);
        EXPECT_EQ(t1.corruptRecords, 0u)
            << "tick " << cfg.haltAtTick << ": " << t1.corruptRecords
            << " of " << t1.committedRecords
            << " committed records corrupted after recovery";
        if (i < 8) {
            cfg.threads = 4;
            fault::PowerFailCampaignResult t4 =
                runPowerFailCampaign(cfg);
            EXPECT_EQ(t1.fingerprint, t4.fingerprint)
                << "tick " << cfg.haltAtTick << " at --threads 4";
        }
    }
}

TEST(FaultPowerFail, HaltedRunReportsInFlightWrites)
{
    fault::PowerFailCampaignConfig cfg;
    cfg.seed = 9;
    fault::PowerFailCampaignResult full = runPowerFailCampaign(cfg);
    cfg.haltAtTick = full.workloadElapsed / 2;
    fault::PowerFailCampaignResult cut = runPowerFailCampaign(cfg);
    EXPECT_TRUE(cut.halted);
    EXPECT_GT(cut.committedRecords, 0u);
    EXPECT_LT(cut.committedRecords, full.committedRecords);
    EXPECT_EQ(cut.corruptRecords, 0u);
    EXPECT_GT(cut.recoveryTicks, 0u) << "dump must cost energy/time";
}

TEST(FaultPowerFail, NoAdrStillDeterministic)
{
    // Without ADR the WPQ is lost — corruption of committed records
    // is allowed (that is the modeled hardware reality) but the
    // outcome must still replay byte-identically.
    fault::PowerFailCampaignConfig cfg;
    cfg.seed = 11;
    cfg.adrWorks = false;
    fault::PowerFailCampaignResult full = runPowerFailCampaign(cfg);
    cfg.haltAtTick = full.workloadElapsed / 3;
    cfg.threads = 1;
    fault::PowerFailCampaignResult a = runPowerFailCampaign(cfg);
    cfg.threads = 2;
    fault::PowerFailCampaignResult b = runPowerFailCampaign(cfg);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
}

// --- The dirty-miss power-fail window (regression) ---
//
// A dirty miss flushes the victim's lines, writes the victim back via
// CP, then installs the new page. The in-DRAM slot metadata must keep
// naming the victim (dirty) until the writeback is ACKED and must name
// the new page (clean) before its bytes land in the slot — otherwise a
// power cut inside the window dumps the new page's bytes over the
// victim's NAND page. Sweep kill ticks across the whole window and
// check both pages' NAND content at every one.

TEST(FaultPowerFail, DirtyMissWindowNeverClobbersVictim)
{
    auto build = [] {
        SystemConfig sc = SystemConfig::scaledTest();
        sc.channels = 1;
        sc.threads = 0; // Serial kernel: exact-tick kills.
        auto sys = std::make_unique<NvdimmcSystem>(sc);
        std::uint32_t slots = sys->layout().slotCount();
        // Fill the cache with dirty zero pages.
        sys->precondition(0, slots, /*dirty=*/true);
        // Page B lives only in the NAND, with a marker pattern.
        std::uint64_t page_b = slots + 7;
        std::vector<std::uint8_t> y(4096, 0xB7);
        bool seeded = false;
        sys->backend().writePage(page_b, y.data(),
                                 [&] { seeded = true; });
        while (!seeded && sys->eq().runOne()) {
        }
        sys->driver().markEverWritten(page_b, 1);
        return std::pair<std::unique_ptr<NvdimmcSystem>,
                         std::uint64_t>(std::move(sys), page_b);
    };

    // Measure the full miss duration once.
    auto [probe, probe_b] = build();
    std::vector<std::uint8_t> r(4096);
    Tick start = probe->eq().now();
    bool done = false;
    probe->driver().read(probe_b * 4096, 4096, r.data(),
                         [&] { done = true; });
    while (!done && probe->eq().runOne()) {
    }
    probe->eq().runFor(100 * kUs); // metadata drains
    Tick window = probe->eq().now() - start;
    ASSERT_EQ(r[0], 0xB7);

    Rng kill_rng(0xD1127, 1);
    std::vector<std::uint8_t> page(4096);
    for (int k = 0; k < 24; ++k) {
        auto [sys, page_b] = build();
        Tick cut = sys->eq().now() + 1 + kill_rng.below(window);
        bool rdone = false;
        sys->driver().read(page_b * 4096, 4096, page.data(),
                           [&] { rdone = true; });
        while (sys->eq().now() < cut && sys->eq().runOne()) {
        }
        core::simulatePowerFailure(*sys,
                                   core::PowerFailureScenario{});

        // Post-mortem: no preconditioned page may have picked up the
        // marker byte, and B's NAND copy must be intact.
        std::uint32_t slots = sys->layout().slotCount();
        for (std::uint64_t p = 0; p < slots; ++p) {
            sys->backend().readPage(p, page.data(), [] {});
            EXPECT_EQ(std::count(page.begin(), page.end(), 0xB7), 0)
                << "kill tick " << cut << ": page " << p
                << " was clobbered with the incoming page's bytes";
        }
        sys->backend().readPage(page_b, page.data(), [] {});
        EXPECT_EQ(page[0], 0xB7) << "kill tick " << cut;
        EXPECT_EQ(page[4095], 0xB7) << "kill tick " << cut;
    }
}

// --- Multi-channel metadata routing (regression) ---
//
// Slot metadata feeds the firmware's flush-on-fail dump, which writes
// into its module-LOCAL backend. The driver used to encode the FLAT
// device page, so on channels >= 2 every dirty slot on channel >= 1
// dumped to the wrong NAND page.

TEST(FaultPowerFail, DumpUsesModuleLocalNandPages)
{
    SystemConfig sc = SystemConfig::scaledTest();
    sc.channels = 2;
    sc.threads = 0;
    NvdimmcSystem sys(sc);

    // Flat page 3 routes to channel 1, local page 1.
    dram::ChannelInterleave il(2, dram::ChannelInterleave::kPageGranule);
    std::uint64_t flat = 3;
    ASSERT_EQ(il.pageChannel(flat), 1u);
    ASSERT_EQ(il.localPage(flat), 1u);

    std::vector<std::uint8_t> w(4096, 0x9c);
    bool done = false;
    sys.driver().write(flat * 4096, 4096, w.data(),
                       [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    sys.eq().runFor(100 * kUs);

    auto report =
        core::simulatePowerFailure(sys, core::PowerFailureScenario{});
    ASSERT_GE(report.pagesDumped, 1u);

    std::vector<std::uint8_t> r(4096, 0);
    sys.channel(1).backend().readPage(1, r.data(), [] {});
    EXPECT_EQ(r[0], 0x9c) << "dump must land on the LOCAL page";
    EXPECT_EQ(r[4095], 0x9c);
    std::vector<std::uint8_t> wrong(4096, 0);
    sys.channel(1).backend().readPage(3, wrong.data(), [] {});
    EXPECT_EQ(std::count(wrong.begin(), wrong.end(), 0x9c), 0)
        << "flat page number leaked into the module-local dump";
}

// --- NVDIMM-N super-cap energy budgets (satellite) ---

struct FaultNvdimmN : public ::testing::Test
{
    FaultNvdimmN()
        : map(4 * kMiB),
          dram(map, dram::Ddr4Timing::ddr4_1600(), true, false),
          bus(eq, dram, false),
          imc(eq, bus, imc::ImcConfig{}),
          cache(eq, imc, cpu::CpuCacheModel::Params{}),
          engine(eq, imc, &cache),
          nand(eq, nvm::ZNandParams::tiny())
    {
    }

    driver::NvdimmNDriver
    make(driver::NvdimmNConfig cfg = {})
    {
        return driver::NvdimmNDriver(eq, engine, dram, nand, cfg);
    }

    void
    write(driver::NvdimmNDriver& drv, Addr addr,
          const std::vector<std::uint8_t>& buf)
    {
        bool done = false;
        drv.write(addr, static_cast<std::uint32_t>(buf.size()),
                  buf.data(), [&] { done = true; });
        while (!done && eq.runOne()) {
        }
        eq.runFor(100 * kUs);
    }

    EventQueue eq;
    dram::AddressMap map;
    dram::DramDevice dram;
    bus::MemoryBus bus;
    imc::Imc imc;
    cpu::CpuCacheModel cache;
    cpu::MemcpyEngine engine;
    nvm::ZNand nand;
};

TEST_F(FaultNvdimmN, ZeroBudgetMeansSaveEverything)
{
    auto drv = make();
    std::uint64_t pages = drv.capacityBytes() / 4096;
    EXPECT_EQ(drv.powerFailBackup(), pages);
    EXPECT_EQ(drv.stats().pagesLostToEnergy.value(), 0u);
    EXPECT_EQ(drv.stats().pagesTruncated.value(), 0u);
}

TEST_F(FaultNvdimmN, SubPageByteBudgetWritesTornPage)
{
    driver::NvdimmNConfig cfg;
    cfg.backupEnergyBytes = 2 * 4096 + 100; // 2 pages + a torn third.
    auto drv = make(cfg);
    std::vector<std::uint8_t> buf(4096, 0x5d);
    write(drv, 2 * 4096, buf); // page 2 is the torn one

    std::uint64_t pages = drv.capacityBytes() / 4096;
    std::uint64_t saved = drv.powerFailBackup();
    EXPECT_EQ(saved, 2u);
    EXPECT_EQ(drv.stats().pagesTruncated.value(), 1u);
    // Accounting identity: every page is saved or lost; the torn page
    // counts as lost (its tail is gone) AND truncated.
    EXPECT_EQ(drv.stats().pagesBackedUp.value() +
                  drv.stats().pagesLostToEnergy.value(),
              pages);

    // The torn page: 100 valid bytes then erased 0xFF tail. (The
    // media model copies bytes at call time — post-mortem idiom.)
    std::vector<std::uint8_t> r(4096, 0);
    nand.readPage(2, r.data(), [] {});
    EXPECT_EQ(r[0], 0x5d);
    EXPECT_EQ(r[99], 0x5d);
    EXPECT_EQ(r[100], 0xff);
    EXPECT_EQ(r[4095], 0xff);
}

TEST_F(FaultNvdimmN, BudgetSmallerThanOnePageSavesNothingWhole)
{
    driver::NvdimmNConfig cfg;
    cfg.backupEnergyBytes = 512;
    auto drv = make(cfg);
    std::uint64_t pages = drv.capacityBytes() / 4096;
    EXPECT_EQ(drv.powerFailBackup(), 0u);
    EXPECT_EQ(drv.stats().pagesTruncated.value(), 1u);
    EXPECT_EQ(drv.stats().pagesLostToEnergy.value(), pages);
}

TEST_F(FaultNvdimmN, RepeatedBackupReprogramsCleanly)
{
    // A second power cut after a completed backup must not program
    // already-programmed pages (a NAND discipline violation); the
    // driver erases the backup region first.
    auto drv = make();
    std::vector<std::uint8_t> buf(4096, 0x21);
    write(drv, 0, buf);
    std::uint64_t pages = drv.capacityBytes() / 4096;
    EXPECT_EQ(drv.powerFailBackup(), pages);

    std::vector<std::uint8_t> buf2(4096, 0x43);
    write(drv, 0, buf2);
    EXPECT_EQ(drv.powerFailBackup(), pages);

    std::vector<std::uint8_t> r(4096, 0);
    nand.readPage(0, r.data(), [] {});
    EXPECT_EQ(r[0], 0x43) << "second backup must persist fresh bytes";
}

// --- Media faults: retirement, relocation, ECC outcomes ---

TEST(FaultMedia, RetiredBlockNeverRejoinsFreePool)
{
    EventQueue eq;
    nvm::ZNand nand(eq, nvm::ZNandParams::tiny());
    ftl::Ftl ftl(eq, nand, tinyFtlConfig());

    std::vector<std::uint8_t> buf(4096, 0x11);
    drive(eq, [&](auto cb) { ftl.writePage(0, buf.data(), cb); });

    // Fail the next program into lpn 0's open block; active blocks
    // round-robin over die slots, so two writes guarantee one lands
    // there. The failed write retries elsewhere; the block retires.
    std::uint64_t ppn = ftl.mapping().lookup(0);
    std::uint64_t bad = nand.flatBlockOfPage(ppn);
    nand.failNextProgramIn(bad);
    std::vector<std::uint8_t> buf2(4096, 0x22);
    drive(eq, [&](auto cb) { ftl.writePage(1, buf2.data(), cb); });
    drive(eq, [&](auto cb) { ftl.writePage(2, buf2.data(), cb); });

    ASSERT_TRUE(ftl.badBlocks().isBad(bad));
    EXPECT_EQ(ftl.blockMeta(bad).state, ftl::BlockMeta::State::Retired);
    EXPECT_EQ(ftl.stats().grownBadBlocks.value(), 1u);
    std::uint32_t erases_at_retire = nand.eraseCount(bad);

    // Hammer overwrites to push GC through many cycles.
    Rng rng(3, 5);
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t lpn = rng.below(64);
        buf[0] = static_cast<std::uint8_t>(i);
        drive(eq, [&](auto cb) { ftl.writePage(lpn, buf.data(), cb); });
    }
    eq.runAll();

    EXPECT_EQ(nand.eraseCount(bad), erases_at_retire)
        << "a retired block must never be erased again";
    EXPECT_EQ(ftl.blockMeta(bad).state,
              ftl::BlockMeta::State::Retired);
    std::string why;
    EXPECT_TRUE(ftl.checkInvariants(&why)) << why;
}

TEST(FaultMedia, GcRelocationSurvivesProgramFailure)
{
    EventQueue eq;
    nvm::ZNand nand(eq, nvm::ZNandParams::tiny());
    ftl::Ftl ftl(eq, nand, tinyFtlConfig());

    // Fill most of the logical space so GC victims always carry live
    // pages (forcing relocations), then arm a program-fault hook so
    // some failures land on relocations themselves.
    std::vector<std::uint64_t> seeds(1400, 0);
    std::vector<std::uint8_t> buf(4096);
    Rng rng(17, 1);
    auto writeLpn = [&](std::uint64_t lpn) {
        seeds[lpn] = rng.next64() | 1;
        workload::fillRecordPattern(buf.data(), 4096, seeds[lpn]);
        drive(eq, [&](auto cb) { ftl.writePage(lpn, buf.data(), cb); });
    };
    for (std::uint64_t l = 0; l < seeds.size(); ++l)
        writeLpn(l);

    Rng fail_rng(23, 9);
    nand.setProgramFaultHook(
        [&](std::uint64_t) { return fail_rng.chance(0.002); });
    for (int i = 0; i < 3000; ++i)
        writeLpn(rng.below(seeds.size()));
    nand.setProgramFaultHook(nullptr);
    eq.runAll();

    EXPECT_GT(ftl.stats().gcRelocations.value(), 0u);
    EXPECT_GT(ftl.stats().grownBadBlocks.value(), 0u)
        << "0.2% program-fail over 3000 rewrites must retire blocks";
    std::string why;
    EXPECT_TRUE(ftl.checkInvariants(&why)) << why;

    // Every oracle page must read back intact.
    for (std::uint64_t l = 0; l < seeds.size(); ++l) {
        drive(eq, [&](auto cb) { ftl.readPage(l, buf.data(), cb); });
        EXPECT_TRUE(
            workload::checkRecordPattern(buf.data(), 4096, seeds[l]))
            << "lpn " << l << " corrupted across GC relocations";
    }
}

TEST(FaultMedia, CampaignIsDeterministicAndSilentCorruptionFree)
{
    fault::MediaFaultCampaignConfig cfg;
    cfg.seed = 31;
    cfg.faults.readRberMean = 0.8;
    cfg.faults.wearRberSlope = 0.05;
    cfg.faults.programFailProb = 0.01;
    cfg.readRetries = 2;

    fault::MediaFaultCampaignResult a = runMediaFaultCampaign(cfg);
    fault::MediaFaultCampaignResult b = runMediaFaultCampaign(cfg);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_GT(a.readErrorsInjected, 0u);
    EXPECT_GT(a.readRetries, 0u);
    EXPECT_EQ(a.silentCorruptions, 0u)
        << "data mismatch without an uncorrectable-read report";
    EXPECT_TRUE(a.invariantsOk) << a.invariantWhy;

    cfg.seed = 32;
    fault::MediaFaultCampaignResult c = runMediaFaultCampaign(cfg);
    EXPECT_NE(a.fingerprint, c.fingerprint)
        << "different seeds must explore different fault sequences";
}

TEST(FaultMedia, ReadRetryRecoversTransientErrors)
{
    fault::MediaFaultCampaignConfig cfg;
    cfg.seed = 41;
    cfg.faults.readRberMean = 1.2;
    cfg.readRetries = 3;
    fault::MediaFaultCampaignResult with = runMediaFaultCampaign(cfg);
    cfg.readRetries = 0;
    fault::MediaFaultCampaignResult without =
        runMediaFaultCampaign(cfg);
    EXPECT_GT(with.readRetrySuccesses, 0u);
    EXPECT_LT(with.uncorrectableReads, without.uncorrectableReads)
        << "retries must convert some uncorrectables into successes";
    EXPECT_EQ(with.silentCorruptions, 0u);
    EXPECT_EQ(without.silentCorruptions, 0u);
}

// --- Checkpoint/restore ---

TEST(FaultCheckpoint, DeviceRoundTripIsByteExact)
{
    EventQueue eq;
    nvm::ZNand nand(eq, nvm::ZNandParams::tiny());
    ftl::Ftl ftl(eq, nand, tinyFtlConfig());
    Rng rng(5, 2);
    std::vector<std::uint8_t> buf(4096);
    for (int i = 0; i < 600; ++i) {
        workload::fillRecordPattern(buf.data(), 4096, rng.next64() | 1);
        std::uint64_t lpn = rng.below(128);
        drive(eq, [&](auto cb) { ftl.writePage(lpn, buf.data(), cb); });
    }
    eq.runAll();

    std::vector<std::uint8_t> image = fault::checkpointDevice(nand, ftl);
    ASSERT_GT(image.size(), 0u);

    EventQueue eq2;
    nvm::ZNand nand2(eq2, nvm::ZNandParams::tiny());
    ftl::Ftl ftl2(eq2, nand2, tinyFtlConfig());
    fault::restoreDevice(image, nand2, ftl2);

    EXPECT_EQ(fault::checkpointDevice(nand2, ftl2), image)
        << "restore followed by checkpoint must be the identity";

    // Restored device must serve the same bytes.
    std::vector<std::uint8_t> a(4096), b(4096);
    for (std::uint64_t lpn = 0; lpn < 128; ++lpn) {
        if (ftl.mapping().lookup(lpn) == ftl::kUnmapped)
            continue;
        drive(eq, [&](auto cb) { ftl.readPage(lpn, a.data(), cb); });
        drive(eq2,
              [&](auto cb) { ftl2.readPage(lpn, b.data(), cb); });
        EXPECT_EQ(std::memcmp(a.data(), b.data(), 4096), 0)
            << "lpn " << lpn;
    }
    std::string why;
    EXPECT_TRUE(ftl2.checkInvariants(&why)) << why;
}

// --- Ageing campaign ---

TEST(FaultAgeing, CompressedMonthsStayConsistent)
{
    fault::AgeingCampaignConfig cfg;
    cfg.seed = 3;
    cfg.rounds = 40;
    cfg.writesPerRound = 80;
    cfg.workingSetPages = 96;
    cfg.faults.readRberMean = 0.2;
    cfg.faults.wearRberSlope = 0.02;
    cfg.faults.programFailProb = 0.002;

    fault::AgeingCampaignResult res = runAgeingCampaign(cfg);
    EXPECT_GT(res.writes, 0u);
    EXPECT_GT(res.gcErases, 0u) << "ageing must cycle blocks";
    EXPECT_TRUE(res.invariantsOk) << res.invariantWhy;
    EXPECT_EQ(res.silentCorruptions, 0u);
    EXPECT_TRUE(res.checkpointDeterministic)
        << "checkpoint-restored replay diverged from the original";
    EXPECT_GT(res.checkpointBytes, 0u);

    fault::AgeingCampaignResult again = runAgeingCampaign(cfg);
    EXPECT_EQ(res.fingerprint, again.fingerprint);
}
