/**
 * @file
 * Media-transport backend conformance suite: every backend behind the
 * MediaBackend seam must satisfy the same contract — miss fills round
 * trip actual bytes, a completed writeback is power-fail durable, and
 * request spans tile exactly into the backend's own phase vocabulary.
 * Runs the same scenarios against the NVDIMM-C CP transport, the
 * CXL.mem hybrid device, and (where the contract applies) the pmem
 * baseline.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "backend/media_backend.hh"
#include "common/span.hh"
#include "core/power.hh"
#include "core/system.hh"
#include "workload/fio.hh"

namespace nvdimmc
{
namespace
{

using core::NvdimmcSystem;
using core::SystemConfig;

SystemConfig
testConfig(backend::BackendKind kind)
{
    SystemConfig cfg = SystemConfig::scaledTest();
    if (kind == backend::BackendKind::CxlHybrid)
        cfg.applyCxlBackend();
    return cfg;
}

void
syncWrite(NvdimmcSystem& sys, Addr off, std::uint32_t len,
          const std::uint8_t* data)
{
    bool done = false;
    sys.driver().write(off, len, data, [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    ASSERT_TRUE(done);
}

void
syncRead(NvdimmcSystem& sys, Addr off, std::uint32_t len,
         std::uint8_t* buf)
{
    bool done = false;
    sys.driver().read(off, len, buf, [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    ASSERT_TRUE(done);
}

class BackendConformance
    : public ::testing::TestWithParam<backend::BackendKind>
{
};

INSTANTIATE_TEST_SUITE_P(
    AllTransports, BackendConformance,
    ::testing::Values(backend::BackendKind::Nvdimmc,
                      backend::BackendKind::CxlHybrid),
    [](const auto& info) {
        return std::string(backend::toString(info.param));
    });

TEST(BackendKind, SpellingRoundTrips)
{
    for (auto k : {backend::BackendKind::Nvdimmc,
                   backend::BackendKind::CxlHybrid,
                   backend::BackendKind::Pmem}) {
        backend::BackendKind out;
        ASSERT_TRUE(backend::parseBackendKind(backend::toString(k), out));
        EXPECT_EQ(out, k);
    }
    backend::BackendKind out;
    EXPECT_FALSE(backend::parseBackendKind("ddr5", out));
    EXPECT_FALSE(backend::parseBackendKind("", out));
}

TEST_P(BackendConformance, TraitsMatchTheArchitecture)
{
    NvdimmcSystem sys(testConfig(GetParam()));
    const backend::BackendTraits& t = sys.transport().traits();
    EXPECT_EQ(t.kind, GetParam());
    EXPECT_TRUE(t.hasMissTransport);
    // Both hybrid transports ack a writeback once the device captured
    // the bytes into a power-safe buffer.
    EXPECT_TRUE(t.durableOnAck);
    if (GetParam() == backend::BackendKind::Nvdimmc) {
        EXPECT_TRUE(t.usesRefreshWindows);
        EXPECT_EQ(t.interleaveGranule, 4096u);
        EXPECT_NE(sys.nvmc(), nullptr);
    } else {
        EXPECT_FALSE(t.usesRefreshWindows);
        EXPECT_EQ(t.interleaveGranule, 256u);
        // No CP page to poll: the module-side controller is not built.
        EXPECT_EQ(sys.nvmc(), nullptr);
    }
}

TEST_P(BackendConformance, MissFillRoundTripsThroughTheMedia)
{
    // Working set larger than the cache so every page is written back
    // to the media and filled again through the transport under test.
    NvdimmcSystem sys(testConfig(GetParam()));
    const std::uint32_t slots = sys.layout().slotCount();
    const std::uint64_t pages = slots + 32;
    std::vector<std::uint8_t> buf(4096);

    for (std::uint64_t p = 0; p < pages; ++p) {
        std::fill(buf.begin(), buf.end(),
                  static_cast<std::uint8_t>(p * 7 + 3));
        syncWrite(sys, p * 4096, 4096, buf.data());
    }
    for (std::uint64_t p = 0; p < 64; ++p) {
        std::fill(buf.begin(), buf.end(), 0xEE);
        syncRead(sys, p * 4096, 4096, buf.data());
        auto expect = static_cast<std::uint8_t>(p * 7 + 3);
        ASSERT_EQ(buf[0], expect) << "page " << p;
        ASSERT_EQ(buf[2048], expect) << "page " << p;
        ASSERT_EQ(buf[4095], expect) << "page " << p;
    }
    EXPECT_TRUE(sys.hardwareClean());
}

TEST_P(BackendConformance, CompletedWritebackSurvivesPowerFailure)
{
    // The durableOnAck contract: once the driver's transport op
    // completed, a power failure (with ADR) must not lose the page.
    NvdimmcSystem sys(testConfig(GetParam()));
    std::vector<std::uint8_t> buf(4096, 0x77);
    syncWrite(sys, 5 * 4096, 4096, buf.data());
    sys.eq().runFor(100 * kUs);

    auto report =
        core::simulatePowerFailure(sys, core::PowerFailureScenario{});
    EXPECT_GE(report.pagesDumped, 1u);

    std::vector<std::uint8_t> r(4096, 0);
    bool done = false;
    sys.backend().readPage(5, r.data(), [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    EXPECT_EQ(r[0], 0x77);
    EXPECT_EQ(r[4095], 0x77);
}

TEST_P(BackendConformance, SpanPhasesTileTheEndToEndLatency)
{
    span::enable();
    span::reset();
    {
        NvdimmcSystem sys(testConfig(GetParam()));
        const std::uint32_t slots = sys.layout().slotCount();
        std::vector<std::uint8_t> buf(4096, 0x42);
        // Dirty sweep past the cache size: every class of transport
        // op (fill, writeback, merged) gets exercised and spanned.
        for (std::uint64_t p = 0; p < slots + 16; ++p)
            syncWrite(sys, p * 4096, 4096, buf.data());
        syncRead(sys, 0, 4096, buf.data());
    }
    span::AuditResult a = span::audit();
    EXPECT_TRUE(a.ok()) << "leaked=" << a.leaked
                        << " unattributed=" << a.unattributedSpans
                        << " order=" << a.orderViolations;
    EXPECT_GT(a.closed, 0u);

    std::ostringstream os;
    span::writeBreakdownJson(os);
    std::string json = os.str();
    if (GetParam() == backend::BackendKind::Nvdimmc) {
        // CP transport: ack polling and window DMA, no link phases.
        EXPECT_NE(json.find("\"cp_write\":"), std::string::npos);
        EXPECT_EQ(json.find("\"link_req\":"), std::string::npos);
    } else {
        // CXL transport: link phases appear, the refresh-window wait
        // vanishes (there are no windows to wait for).
        EXPECT_NE(json.find("\"link_req\":"), std::string::npos);
        EXPECT_NE(json.find("\"link_resp\":"), std::string::npos);
        EXPECT_NE(json.find("\"dev_copy\":"), std::string::npos);
        EXPECT_EQ(json.find("\"window_wait\":"), std::string::npos);
        EXPECT_EQ(json.find("\"cp_write\":"), std::string::npos);
    }
    span::reset();
    span::disable();
}

TEST(CxlBackend, FillsAndWritebacksAreCounted)
{
    SystemConfig cfg = testConfig(backend::BackendKind::CxlHybrid);
    NvdimmcSystem sys(cfg);
    const std::uint32_t slots = sys.layout().slotCount();
    std::vector<std::uint8_t> buf(4096, 0x11);
    for (std::uint64_t p = 0; p < slots + 8; ++p)
        syncWrite(sys, p * 4096, 4096, buf.data());
    syncRead(sys, 0, 4096, buf.data());

    std::ostringstream os;
    sys.dumpStats(os);
    std::string stats = os.str();
    EXPECT_NE(stats.find("nvdc.cxl.cachefills"), std::string::npos);
    EXPECT_NE(stats.find("nvdc.cxl.writebacks"), std::string::npos);
    // The CP ack-poll counter belongs to the NVDIMM-C transport only.
    EXPECT_EQ(stats.find("nvdc.ack_polls"), std::string::npos);
}

TEST(CxlBackend, FineInterleaveMultiChannelIntegrity)
{
    // 256 B striping across 2 channels: a 4 KiB slot is spread over
    // both modules' DRAM — only legal because the CXL device copies
    // pages internally. Bytes must still round trip exactly.
    SystemConfig cfg = testConfig(backend::BackendKind::CxlHybrid);
    cfg.channels = 2;
    NvdimmcSystem sys(cfg);
    ASSERT_EQ(sys.hostPort().interleave().granule(), 256u);

    std::map<std::uint64_t, std::uint8_t> model;
    Rng rng(7);
    std::vector<std::uint8_t> buf(4096);
    const std::uint64_t pages = sys.totalSlotCount() + 24;
    for (int op = 0; op < 200; ++op) {
        std::uint64_t page = rng.below(pages);
        if (rng.chance(0.6)) {
            auto fill = static_cast<std::uint8_t>(rng.next() | 1);
            std::fill(buf.begin(), buf.end(), fill);
            syncWrite(sys, page * 4096, 4096, buf.data());
            model[page] = fill;
        } else {
            std::fill(buf.begin(), buf.end(), 0xEE);
            syncRead(sys, page * 4096, 4096, buf.data());
            auto it = model.find(page);
            std::uint8_t expect = it == model.end() ? 0 : it->second;
            ASSERT_EQ(buf[1], expect) << "page " << page;
            ASSERT_EQ(buf[257], expect) << "page " << page;
            ASSERT_EQ(buf[4095], expect) << "page " << page;
        }
    }
    EXPECT_TRUE(sys.hardwareClean());
}

/** One short sharded CXL fio run; returns the full text stats dump. */
std::string
cxlShardedRun(std::uint32_t channels, std::uint32_t threads)
{
    SystemConfig cfg = testConfig(backend::BackendKind::CxlHybrid);
    cfg.channels = channels;
    cfg.threads = threads;
    NvdimmcSystem sys(cfg);
    const std::uint32_t slots = sys.totalSlotCount();
    const std::uint32_t pages = slots - 64 * channels;
    sys.precondition(0, pages, true);

    workload::FioConfig fio;
    fio.pattern = workload::FioConfig::Pattern::RandWrite;
    fio.blockSize = 4096;
    fio.threads = 2;
    fio.regionBytes = std::uint64_t{pages} * 4096;
    fio.rampTime = 50 * kUs;
    fio.runTime = 500 * kUs;
    fio.seed = 42;
    workload::AccessFn fn = [&sys](Addr off, std::uint32_t len,
                                   bool is_write,
                                   std::function<void()> done) {
        if (is_write)
            sys.driver().write(off, len, nullptr, std::move(done));
        else
            sys.driver().read(off, len, nullptr, std::move(done));
    };
    workload::FioJob job(sys.eq(), fn, fio);
    workload::FioResult res = job.run();

    EXPECT_TRUE(sys.hardwareClean());
    std::ostringstream os;
    os.precision(17);
    os << res.mbps << " " << res.kiops << " " << res.ops << "\n";
    sys.dumpStats(os);
    return os.str();
}

TEST(CxlBackend, ByteIdenticalAcrossThreadCounts)
{
    std::string t1 = cxlShardedRun(2, 1);
    EXPECT_EQ(t1, cxlShardedRun(2, 2));
    EXPECT_EQ(t1, cxlShardedRun(2, 4));
    EXPECT_NE(t1.find("nvdc.cxl.cachefills"), std::string::npos);
}

} // namespace
} // namespace nvdimmc
