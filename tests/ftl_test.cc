/**
 * @file
 * FTL tests: mapping integrity, GC liveness, wear leveling, bad
 * blocks, overprovisioning and ECC.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include <cstring>
#include <map>
#include <vector>

#include "common/event_queue.hh"
#include "common/random.hh"
#include "ftl/ftl.hh"

namespace nvdimmc::ftl
{
namespace
{

nvm::ZNandParams
tinyParams()
{
    return nvm::ZNandParams::tiny();
}

FtlConfig
testConfig()
{
    FtlConfig cfg;
    cfg.gcLowWaterBlocks = 2;
    cfg.gcHighWaterBlocks = 4;
    return cfg;
}

struct FtlFixture : public ::testing::Test
{
    FtlFixture()
        : nand(eq, tinyParams()), ftl(eq, nand, testConfig())
    {
    }

    void
    writePage(std::uint64_t lpn, std::uint8_t fill)
    {
        std::vector<std::uint8_t> buf(4096, fill);
        bool done = false;
        ftl.writePage(lpn, buf.data(), [&] { done = true; });
        eq.runAll();
        ASSERT_TRUE(done);
    }

    std::uint8_t
    readPageFirstByte(std::uint64_t lpn)
    {
        std::vector<std::uint8_t> buf(4096, 0xcd);
        bool done = false;
        ftl.readPage(lpn, buf.data(), [&] { done = true; });
        eq.runAll();
        EXPECT_TRUE(done);
        return buf[0];
    }

    EventQueue eq;
    nvm::ZNand nand;
    Ftl ftl;
};

TEST_F(FtlFixture, ExposesOverprovisionedCapacity)
{
    // 120/128 of the physical pages.
    auto physical = nand.params().totalPages();
    EXPECT_EQ(ftl.pageCount(),
              static_cast<std::uint64_t>(physical * 120.0 / 128.0));
}

TEST_F(FtlFixture, WriteReadRoundTrip)
{
    writePage(7, 0x3c);
    EXPECT_EQ(readPageFirstByte(7), 0x3c);
}

TEST_F(FtlFixture, UnwrittenPageReadsZero)
{
    EXPECT_EQ(readPageFirstByte(9), 0x00);
    EXPECT_EQ(ftl.stats().unmappedReads.value(), 1u);
}

TEST_F(FtlFixture, OverwriteRemapsAndInvalidates)
{
    writePage(5, 0x01);
    std::uint64_t ppn1 = ftl.mapping().lookup(5);
    writePage(5, 0x02);
    std::uint64_t ppn2 = ftl.mapping().lookup(5);
    EXPECT_NE(ppn1, ppn2) << "out-of-place update";
    EXPECT_EQ(readPageFirstByte(5), 0x02);
    EXPECT_EQ(ftl.mapping().reverseLookup(ppn1), kUnmapped);
}

TEST_F(FtlFixture, GcReclaimsSpaceWithoutLosingData)
{
    // Overwrite a small working set far more times than the device
    // has free blocks: forces repeated GC.
    // tiny() has 2048 physical pages; 32 x 80 = 2560 programs must
    // wrap the device and force GC.
    const std::uint64_t working_set = 32;
    const int rounds = 80;
    for (int round = 0; round < rounds; ++round) {
        for (std::uint64_t p = 0; p < working_set; ++p) {
            writePage(p,
                      static_cast<std::uint8_t>((round + p) & 0xff));
        }
    }
    EXPECT_GT(ftl.stats().gcRuns.value(), 0u);
    EXPECT_GT(ftl.stats().gcErases.value(), 0u);
    // Every page must still read back its latest value.
    for (std::uint64_t p = 0; p < working_set; ++p) {
        EXPECT_EQ(readPageFirstByte(p),
                  static_cast<std::uint8_t>((rounds - 1 + p) & 0xff))
            << "page " << p;
    }
    EXPECT_GE(ftl.freeBlockCount(), 1u);
}

TEST_F(FtlFixture, WriteAmplificationAccounting)
{
    const std::uint64_t working_set = 32;
    for (int round = 0; round < 30; ++round) {
        for (std::uint64_t p = 0; p < working_set; ++p)
            writePage(p, 0x11);
    }
    double wa = ftl.stats().writeAmplification();
    EXPECT_GE(wa, 1.0);
    EXPECT_LT(wa, 5.0);
}

TEST_F(FtlFixture, SequentialFillNoGcRelocations)
{
    // Writing unique pages below the exposed capacity never needs a
    // relocation (every block GC'd would be fully valid).
    for (std::uint64_t p = 0; p < 128; ++p)
        writePage(p, 0x22);
    EXPECT_EQ(ftl.stats().gcRelocations.value(), 0u);
}

TEST_F(FtlFixture, ReadsGoThroughEcc)
{
    writePage(0, 0x55);
    readPageFirstByte(0);
    // Default error rate is tiny; no uncorrectables expected.
    EXPECT_EQ(ftl.stats().uncorrectableReads.value(), 0u);
}

TEST(FtlEcc, InjectedErrorsBecomeUncorrectable)
{
    EventQueue eq;
    nvm::ZNand nand(eq, tinyParams());
    FtlConfig cfg = testConfig();
    cfg.ecc.correctableBits = 2;
    cfg.ecc.rawBitErrorMean = 8.0; // Far beyond the capability.
    Ftl ftl(eq, nand, cfg);

    std::vector<std::uint8_t> buf(4096, 0x1);
    bool done = false;
    ftl.writePage(0, buf.data(), [&] { done = true; });
    eq.runAll();
    for (int i = 0; i < 20; ++i) {
        ftl.readPage(0, buf.data(), [] {});
        eq.runAll();
    }
    EXPECT_GT(ftl.stats().uncorrectableReads.value(), 10u);
    (void)done;
}

TEST(FtlBadBlocks, FactoryBadBlocksAreNeverUsed)
{
    EventQueue eq;
    nvm::ZNand nand(eq, tinyParams());
    nand.markBadBlock(0);
    nand.markBadBlock(5);
    Ftl ftl(eq, nand, testConfig());
    EXPECT_EQ(ftl.badBlocks().badCount(), 2u);

    std::vector<std::uint8_t> buf(4096, 0x9);
    for (std::uint64_t p = 0; p < 64; ++p) {
        ftl.writePage(p, buf.data(), [] {});
        eq.runAll();
    }
    // No page of a bad block may hold a mapping.
    for (std::uint64_t p = 0; p < 64; ++p) {
        std::uint64_t ppn = ftl.mapping().lookup(p);
        ASSERT_NE(ppn, kUnmapped);
        std::uint64_t blk = nand.flatBlockOfPage(ppn);
        EXPECT_NE(blk, 0u);
        EXPECT_NE(blk, 5u);
    }
}

TEST(FtlBadBlocks, TooManyBadBlocksIsFatal)
{
    EventQueue eq;
    nvm::ZNand nand(eq, tinyParams());
    for (std::uint64_t b = 0; b < nand.params().totalBlocks(); ++b)
        nand.markBadBlock(b);
    EXPECT_THROW(Ftl(eq, nand, testConfig()), FatalError);
}

TEST(FtlWear, HotWorkloadKeepsWearSpreadBounded)
{
    EventQueue eq;
    nvm::ZNand nand(eq, tinyParams());
    FtlConfig cfg = testConfig();
    cfg.wearThreshold = 8;
    Ftl ftl(eq, nand, cfg);

    // Cold data: fill a third of the device once.
    std::uint64_t cold_pages = ftl.pageCount() / 3;
    std::vector<std::uint8_t> buf(4096, 0xaa);
    for (std::uint64_t p = 0; p < cold_pages; ++p) {
        ftl.writePage(p, buf.data(), [] {});
        eq.runAll();
    }
    // Hot data: hammer a few pages.
    for (int round = 0; round < 400; ++round) {
        for (std::uint64_t p = 0; p < 8; ++p) {
            ftl.writePage(cold_pages + p, buf.data(), [] {});
            eq.runAll();
        }
    }
    // Cold data intact.
    std::vector<std::uint8_t> r(4096, 0);
    ftl.readPage(3, r.data(), [] {});
    eq.runAll();
    EXPECT_EQ(r[0], 0xaa);
    // Wear spread stays bounded (static WL recycles cold blocks).
    EXPECT_LE(ftl.wearSpread(), 3 * cfg.wearThreshold);
}

TEST(FtlGrownBad, ProgramFailureRetiresBlockAndRetries)
{
    EventQueue eq;
    nvm::ZNand nand(eq, tinyParams());
    Ftl ftl(eq, nand, testConfig());

    // Writes round-robin across the two dies; write pages 0 and 1 to
    // discover both active blocks, then poison page 0's block — page
    // 2 goes back to that die and hits the failure.
    std::vector<std::uint8_t> buf(4096, 0x6d);
    bool done = false;
    ftl.writePage(0, buf.data(), [&] { done = true; });
    eq.runAll();
    ftl.writePage(1, buf.data(), [&] { done = true; });
    eq.runAll();
    std::uint64_t first_ppn = ftl.mapping().lookup(0);
    std::uint64_t blk = nand.flatBlockOfPage(first_ppn);

    nand.failNextProgramIn(blk);
    std::fill(buf.begin(), buf.end(), 0x6e);
    done = false;
    ftl.writePage(2, buf.data(), [&] { done = true; });
    eq.runAll();
    ASSERT_TRUE(done);

    EXPECT_EQ(ftl.stats().grownBadBlocks.value(), 1u);
    EXPECT_TRUE(ftl.badBlocks().isBad(blk));
    EXPECT_EQ(nand.stats().programFailures.value(), 1u);
    // The retried write landed on a healthy block with correct data.
    std::uint64_t ppn = ftl.mapping().lookup(2);
    ASSERT_NE(ppn, kUnmapped);
    EXPECT_NE(nand.flatBlockOfPage(ppn), blk);
    std::vector<std::uint8_t> r(4096, 0);
    ftl.readPage(2, r.data(), [] {});
    eq.runAll();
    EXPECT_EQ(r[0], 0x6e);

    // The retired block is never allocated again.
    for (std::uint64_t p = 3; p < 200; ++p) {
        ftl.writePage(p, buf.data(), [] {});
        eq.runAll();
        std::uint64_t pp = ftl.mapping().lookup(p);
        EXPECT_NE(nand.flatBlockOfPage(pp), blk) << "page " << p;
    }
}

TEST(FtlPrecondition, SequentialFillMapsInstantly)
{
    EventQueue eq;
    nvm::ZNand nand(eq, tinyParams());
    Ftl ftl(eq, nand, testConfig());
    ftl.preconditionSequentialFill(256);
    EXPECT_EQ(eq.now(), 0u) << "no simulated time may pass";
    for (std::uint64_t p = 0; p < 256; ++p) {
        std::uint64_t ppn = ftl.mapping().lookup(p);
        ASSERT_NE(ppn, kUnmapped);
        EXPECT_TRUE(nand.pageProgrammed(ppn));
    }
    // A read of a preconditioned page pays real NAND latency.
    bool done = false;
    Tick start = eq.now();
    ftl.readPage(5, nullptr, [&] { done = true; });
    eq.runAll();
    ASSERT_TRUE(done);
    EXPECT_GE(eq.now() - start, nand.params().tR);
}

TEST(MappingTableUnit, MapRemapReverse)
{
    MappingTable mt(100);
    EXPECT_EQ(mt.lookup(5), kUnmapped);
    EXPECT_EQ(mt.map(5, 1000), kUnmapped);
    EXPECT_EQ(mt.lookup(5), 1000u);
    EXPECT_EQ(mt.reverseLookup(1000), 5u);
    EXPECT_EQ(mt.map(5, 2000), 1000u);
    EXPECT_EQ(mt.reverseLookup(1000), kUnmapped);
    EXPECT_EQ(mt.reverseLookup(2000), 5u);
    EXPECT_EQ(mt.mappedCount(), 1u);
}

TEST(GarbageCollectorUnit, GreedyPicksFewestValid)
{
    std::vector<BlockMeta> blocks(4);
    blocks[0].state = BlockMeta::State::Full;
    blocks[0].validCount = 10;
    blocks[1].state = BlockMeta::State::Full;
    blocks[1].validCount = 2;
    blocks[2].state = BlockMeta::State::Active;
    blocks[2].validCount = 0;
    blocks[3].state = BlockMeta::State::Free;
    auto victim = GarbageCollector::pickVictim(blocks);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 1u);
}

TEST(GarbageCollectorUnit, NoFullBlocksMeansNoVictim)
{
    std::vector<BlockMeta> blocks(2);
    EXPECT_FALSE(GarbageCollector::pickVictim(blocks).has_value());
}

/** Random mixed workload keeps FTL contents equal to a model map. */
class FtlRandomProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FtlRandomProperty, MatchesReferenceModel)
{
    EventQueue eq;
    nvm::ZNand nand(eq, tinyParams());
    Ftl ftl(eq, nand, testConfig());
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);

    std::map<std::uint64_t, std::uint8_t> model;
    const std::uint64_t span = 64;

    for (int op = 0; op < 600; ++op) {
        std::uint64_t lpn = rng.below(span);
        if (rng.chance(0.6)) {
            auto fill = static_cast<std::uint8_t>(rng.next());
            std::vector<std::uint8_t> buf(4096, fill);
            ftl.writePage(lpn, buf.data(), [] {});
            eq.runAll();
            model[lpn] = fill;
        } else {
            std::vector<std::uint8_t> buf(4096, 0xef);
            ftl.readPage(lpn, buf.data(), [] {});
            eq.runAll();
            auto it = model.find(lpn);
            std::uint8_t expect = it == model.end() ? 0 : it->second;
            ASSERT_EQ(buf[0], expect) << "lpn " << lpn;
            ASSERT_EQ(buf[4095], expect);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlRandomProperty,
                         ::testing::Range(1, 7));

} // namespace
} // namespace nvdimmc::ftl
