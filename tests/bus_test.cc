/**
 * @file
 * Shared-bus multi-master conflict detection tests (paper Fig 2a).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "bus/bus_tracer.hh"
#include "bus/memory_bus.hh"
#include "common/event_queue.hh"

namespace nvdimmc::bus
{
namespace
{

using dram::Ddr4Op;

struct BusFixture : public ::testing::Test
{
    BusFixture()
        : map(16 * kMiB),
          dev(map, dram::Ddr4Timing::ddr4_1600(), false, false),
          bus(eq, dev, false)
    {
        host = bus.registerMaster("host");
        nvmc = bus.registerMaster("nvmc");
    }

    EventQueue eq;
    dram::AddressMap map;
    dram::DramDevice dev;
    MemoryBus bus;
    int host = -1;
    int nvmc = -1;
};

TEST_F(BusFixture, SingleMasterNoConflicts)
{
    const auto& t = dev.timing();
    bus.issueCommand(host, {Ddr4Op::Activate, 0, 0, 0, 0});
    eq.runUntil(t.tRCD);
    bus.issueCommand(host, {Ddr4Op::Read, 0, 0, 0, 0});
    EXPECT_EQ(bus.conflictCount(), 0u);
    EXPECT_EQ(bus.commandCount(host), 2u);
}

TEST_F(BusFixture, CaseC1CommandCollision)
{
    // Paper Fig 2a case 1: the NVMC activates while the host issues a
    // command in the same slot.
    bus.issueCommand(nvmc, {Ddr4Op::Activate, 0, 0, 1, 0});
    bus.issueCommand(host, {Ddr4Op::Activate, 1, 0, 2, 0});
    EXPECT_EQ(bus.conflictCount(), 1u);
    EXPECT_EQ(bus.conflicts()[0].masterA, host);
    EXPECT_EQ(bus.conflicts()[0].masterB, nvmc);
}

TEST_F(BusFixture, CaseC2PrechargeInvalidatesOtherMastersRead)
{
    // Paper Fig 2a case 2: both masters work on the same row; the
    // host precharges it, and the NVMC's subsequent read hits a
    // closed bank — a DRAM protocol violation.
    const auto& t = dev.timing();
    bus.issueCommand(nvmc, {Ddr4Op::Activate, 0, 0, 7, 0});
    eq.runUntil(t.tRAS);
    bus.issueCommand(host, {Ddr4Op::Precharge, 0, 0, 0, 0});
    eq.runUntil(t.tRAS + t.tRP);
    auto res = bus.issueCommand(nvmc, {Ddr4Op::Read, 0, 0, 7, 0});
    EXPECT_FALSE(res.ok);
    EXPECT_GE(dev.stats().violations.value(), 1u);
}

TEST_F(BusFixture, CommandsInDistinctSlotsDoNotConflict)
{
    const auto& t = dev.timing();
    bus.issueCommand(nvmc, {Ddr4Op::Activate, 0, 0, 1, 0});
    eq.runUntil(t.tCK);
    bus.issueCommand(host, {Ddr4Op::Activate, 1, 0, 2, 0});
    EXPECT_EQ(bus.conflictCount(), 0u);
}

TEST_F(BusFixture, SameMasterBackToBackIsFine)
{
    bus.issueCommand(host, {Ddr4Op::Activate, 0, 0, 1, 0});
    bus.issueCommand(host, {Ddr4Op::Nop, 0, 0, 0, 0});
    EXPECT_EQ(bus.conflictCount(), 0u);
}

TEST_F(BusFixture, NopAndDeselectDoNotDriveTheBus)
{
    bus.issueCommand(nvmc, {Ddr4Op::Activate, 0, 0, 1, 0});
    bus.issueCommand(host, {Ddr4Op::Deselect, 0, 0, 0, 0});
    bus.issueCommand(host, {Ddr4Op::Nop, 0, 0, 0, 0});
    EXPECT_EQ(bus.conflictCount(), 0u);
}

TEST_F(BusFixture, DqCollisionDetected)
{
    const auto& t = dev.timing();
    // Host read data window.
    bus.issueCommand(host, {Ddr4Op::Activate, 0, 0, 0, 0});
    eq.runUntil(t.tRCD);
    bus.issueCommand(host, {Ddr4Op::Read, 0, 0, 0, 0});
    // NVMC claims an overlapping DQ window by force.
    bus.claimDq(nvmc, eq.now() + t.tCL, eq.now() + t.tCL + 1000);
    EXPECT_GE(bus.conflictCount(), 1u);
}

TEST_F(BusFixture, DqDisjointWindowsFine)
{
    const auto& t = dev.timing();
    bus.claimDq(host, 1000, 2000);
    bus.claimDq(nvmc, 2000, 3000);
    EXPECT_EQ(bus.conflictCount(), 0u);
    (void)t;
}

TEST_F(BusFixture, PanicModeAborts)
{
    MemoryBus strict(eq, dev, true);
    int a = strict.registerMaster("a");
    int b = strict.registerMaster("b");
    strict.issueCommand(a, {Ddr4Op::Activate, 0, 0, 1, 0});
    EXPECT_THROW(strict.issueCommand(b, {Ddr4Op::Activate, 0, 0, 2, 0}),
                 PanicError);
}

/** Snoopers see every driven frame with correct decoding. */
struct RecordingSnooper : public CaSnooper
{
    std::vector<dram::Ddr4Op> seen;

    void
    observeFrame(const dram::CaFrame& frame, Tick) override
    {
        seen.push_back(dram::decodeFrame(frame).op);
    }
};

TEST_F(BusFixture, SnooperObservesAllDrivenCommands)
{
    RecordingSnooper snoop;
    bus.addSnooper(&snoop);
    const auto& t = dev.timing();
    bus.issueCommand(host, {Ddr4Op::Activate, 0, 0, 0, 0});
    eq.runUntil(t.tRAS);
    bus.issueCommand(host, {Ddr4Op::PrechargeAll, 0, 0, 0, 0});
    eq.runUntil(t.tRAS + t.tRP);
    bus.issueCommand(host, {Ddr4Op::Refresh, 0, 0, 0, 0});
    // NOP is not driven, so the snooper must not see it.
    bus.issueCommand(host, {Ddr4Op::Nop, 0, 0, 0, 0});
    ASSERT_EQ(snoop.seen.size(), 3u);
    EXPECT_EQ(snoop.seen[0], Ddr4Op::Activate);
    EXPECT_EQ(snoop.seen[1], Ddr4Op::PrechargeAll);
    EXPECT_EQ(snoop.seen[2], Ddr4Op::Refresh);
}

TEST_F(BusFixture, ConflictRecordsAreDescriptive)
{
    bus.issueCommand(nvmc, {Ddr4Op::Activate, 0, 0, 1, 0});
    bus.issueCommand(host, {Ddr4Op::Read, 0, 0, 1, 0});
    ASSERT_EQ(bus.conflictCount(), 1u);
    EXPECT_NE(bus.conflicts()[0].what.find("CA collision"),
              std::string::npos);
    bus.clearConflicts();
    EXPECT_EQ(bus.conflictCount(), 0u);
}

TEST_F(BusFixture, SameMasterOverDriveIsAConflict)
{
    // A master cramming two CA frames into one tCK slot is just as
    // much an electrical conflict as a cross-master collision; the
    // caOwner_ exemption used to let it slip through undetected.
    bus.issueCommand(host, {Ddr4Op::Activate, 0, 0, 1, 0});
    bus.issueCommand(host, {Ddr4Op::Read, 0, 0, 1, 0});
    ASSERT_EQ(bus.conflictCount(), 1u);
    EXPECT_NE(bus.conflicts()[0].what.find("CA over-drive"),
              std::string::npos);
    EXPECT_NE(bus.conflicts()[0].what.find("host"),
              std::string::npos);
}

TEST_F(BusFixture, TracerClearResetsTotalButClearEntriesKeepsIt)
{
    BusTracer tracer(2);
    bus.addSnooper(&tracer);
    const auto& t = dev.timing();
    for (int i = 0; i < 3; ++i) {
        bus.issueCommand(host, {Ddr4Op::Activate, 0, 0, 0, 0});
        eq.runUntil(eq.now() + t.tCK);
    }
    // Ring holds the last two commands; the total keeps counting.
    EXPECT_EQ(tracer.entries().size(), 2u);
    EXPECT_EQ(tracer.totalObserved(), 3u);

    tracer.clearEntries();
    EXPECT_TRUE(tracer.entries().empty());
    EXPECT_EQ(tracer.totalObserved(), 3u);

    bus.issueCommand(host, {Ddr4Op::Activate, 0, 0, 0, 0});
    EXPECT_EQ(tracer.totalObserved(), 4u);

    // Full clear() also zeroes the running total — it used to leave
    // the stale count from the discarded epoch behind.
    tracer.clear();
    EXPECT_TRUE(tracer.entries().empty());
    EXPECT_EQ(tracer.totalObserved(), 0u);
}

} // namespace
} // namespace nvdimmc::bus
