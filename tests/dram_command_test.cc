/**
 * @file
 * DDR4 command encode/decode tests — the refresh detector's
 * correctness rests on REF never aliasing with any other encoding.
 */

#include <gtest/gtest.h>

#include "dram/ddr4_command.hh"

namespace nvdimmc::dram
{
namespace
{

TEST(Ddr4Command, RefreshPinPatternMatchesPaper)
{
    // Paper §IV-A: REF is CKE, ACT_n, WE_n high; CS_n, RAS_n, CAS_n
    // low.
    CaFrame f = encodeCommand({Ddr4Op::Refresh, 0, 0, 0, 0});
    EXPECT_TRUE(f.cke);
    EXPECT_TRUE(f.actN);
    EXPECT_TRUE(f.weN);
    EXPECT_FALSE(f.csN);
    EXPECT_FALSE(f.rasN);
    EXPECT_FALSE(f.casN);
}

TEST(Ddr4Command, DecodeRefresh)
{
    CaFrame f = encodeCommand({Ddr4Op::Refresh, 0, 0, 0, 0});
    EXPECT_EQ(decodeFrame(f).op, Ddr4Op::Refresh);
}

TEST(Ddr4Command, SelfRefreshEnterHasCkeFalling)
{
    CaFrame f = encodeCommand({Ddr4Op::SelfRefreshEnter, 0, 0, 0, 0});
    EXPECT_TRUE(f.ckePrev);
    EXPECT_FALSE(f.cke);
    EXPECT_EQ(decodeFrame(f).op, Ddr4Op::SelfRefreshEnter);
}

TEST(Ddr4Command, SelfRefreshExitHasCkeRising)
{
    CaFrame f = encodeCommand({Ddr4Op::SelfRefreshExit, 0, 0, 0, 0});
    EXPECT_FALSE(f.ckePrev);
    EXPECT_TRUE(f.cke);
    EXPECT_EQ(decodeFrame(f).op, Ddr4Op::SelfRefreshExit);
}

TEST(Ddr4Command, SreIsNotDecodedAsRefresh)
{
    CaFrame f = encodeCommand({Ddr4Op::SelfRefreshEnter, 0, 0, 0, 0});
    EXPECT_NE(decodeFrame(f).op, Ddr4Op::Refresh);
}

TEST(Ddr4Command, RefreshFamilyClassifier)
{
    EXPECT_TRUE(isRefreshFamily(Ddr4Op::Refresh));
    EXPECT_TRUE(isRefreshFamily(Ddr4Op::SelfRefreshEnter));
    EXPECT_TRUE(isRefreshFamily(Ddr4Op::SelfRefreshExit));
    EXPECT_FALSE(isRefreshFamily(Ddr4Op::Read));
    EXPECT_FALSE(isRefreshFamily(Ddr4Op::PrechargeAll));
}

TEST(Ddr4Command, DeselectDrivesCsHigh)
{
    CaFrame f = encodeCommand({Ddr4Op::Deselect, 0, 0, 0, 0});
    EXPECT_TRUE(f.csN);
    EXPECT_EQ(decodeFrame(f).op, Ddr4Op::Deselect);
}

TEST(Ddr4Command, PrechargeAllUsesA10)
{
    CaFrame pre = encodeCommand({Ddr4Op::Precharge, 1, 2, 0, 0});
    CaFrame prea = encodeCommand({Ddr4Op::PrechargeAll, 0, 0, 0, 0});
    EXPECT_FALSE(pre.a10);
    EXPECT_TRUE(prea.a10);
    EXPECT_EQ(decodeFrame(pre).op, Ddr4Op::Precharge);
    EXPECT_EQ(decodeFrame(prea).op, Ddr4Op::PrechargeAll);
}

TEST(Ddr4Command, AutoPrechargeVariants)
{
    EXPECT_EQ(decodeFrame(encodeCommand({Ddr4Op::ReadAP, 0, 0, 0, 5}))
                  .op,
              Ddr4Op::ReadAP);
    EXPECT_EQ(decodeFrame(encodeCommand({Ddr4Op::WriteAP, 0, 0, 0, 5}))
                  .op,
              Ddr4Op::WriteAP);
}

TEST(Ddr4Command, DescribeIsHumanReadable)
{
    Ddr4Command c{Ddr4Op::Activate, 1, 2, 77, 0};
    std::string s = c.describe();
    EXPECT_NE(s.find("ACT"), std::string::npos);
    EXPECT_NE(s.find("77"), std::string::npos);
}

/** Every op round-trips through the pin encoding. */
class RoundTrip : public ::testing::TestWithParam<Ddr4Op>
{
};

TEST_P(RoundTrip, EncodeDecodeIdentity)
{
    Ddr4Command cmd;
    cmd.op = GetParam();
    cmd.bankGroup = 2;
    cmd.bank = 3;
    cmd.row = 0x1abc;
    cmd.col = 0x2f;
    Ddr4Command back = decodeFrame(encodeCommand(cmd));
    EXPECT_EQ(back.op, cmd.op) << toString(cmd.op);
    // Address fidelity where the encoding carries it.
    switch (cmd.op) {
      case Ddr4Op::Activate:
        EXPECT_EQ(back.row, cmd.row);
        EXPECT_EQ(back.bankGroup, cmd.bankGroup);
        EXPECT_EQ(back.bank, cmd.bank);
        break;
      case Ddr4Op::Read:
      case Ddr4Op::ReadAP:
      case Ddr4Op::Write:
      case Ddr4Op::WriteAP:
        EXPECT_EQ(back.col, cmd.col);
        EXPECT_EQ(back.bankGroup, cmd.bankGroup);
        EXPECT_EQ(back.bank, cmd.bank);
        break;
      default:
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundTrip,
    ::testing::Values(Ddr4Op::Deselect, Ddr4Op::Nop, Ddr4Op::Activate,
                      Ddr4Op::Read, Ddr4Op::ReadAP, Ddr4Op::Write,
                      Ddr4Op::WriteAP, Ddr4Op::Precharge,
                      Ddr4Op::PrechargeAll, Ddr4Op::Refresh,
                      Ddr4Op::SelfRefreshEnter,
                      Ddr4Op::SelfRefreshExit,
                      Ddr4Op::ModeRegisterSet,
                      Ddr4Op::ZqCalibration),
    [](const ::testing::TestParamInfo<Ddr4Op>& info) {
        return toString(info.param);
    });

/**
 * Exhaustive alias check: no non-REF op's encoding decodes to REF.
 * This is the property the paper's detector depends on ("the CA
 * states of all DDR4 commands are mutually exclusive").
 */
class NoRefAlias : public ::testing::TestWithParam<Ddr4Op>
{
};

TEST_P(NoRefAlias, NeverDecodesAsRefresh)
{
    if (GetParam() == Ddr4Op::Refresh)
        GTEST_SKIP() << "REF itself";
    for (std::uint32_t row : {0u, 1u, 0x3fffu, 0x1c000u}) {
        Ddr4Command cmd;
        cmd.op = GetParam();
        cmd.row = row;
        cmd.col = row & 0x7f;
        CaFrame f = encodeCommand(cmd);
        EXPECT_NE(decodeFrame(f).op, Ddr4Op::Refresh)
            << toString(GetParam()) << " row " << row;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, NoRefAlias,
    ::testing::Values(Ddr4Op::Deselect, Ddr4Op::Nop, Ddr4Op::Activate,
                      Ddr4Op::Read, Ddr4Op::ReadAP, Ddr4Op::Write,
                      Ddr4Op::WriteAP, Ddr4Op::Precharge,
                      Ddr4Op::PrechargeAll, Ddr4Op::SelfRefreshEnter,
                      Ddr4Op::SelfRefreshExit,
                      Ddr4Op::ModeRegisterSet,
                      Ddr4Op::ZqCalibration),
    [](const ::testing::TestParamInfo<Ddr4Op>& info) {
        return toString(info.param);
    });

} // namespace
} // namespace nvdimmc::dram
