/**
 * @file
 * CPU-side tests: cache model (including the paper's §V-B coherence
 * hazards), memcpy engine, worker threads.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "cpu/cache_model.hh"
#include "cpu/memcpy_engine.hh"
#include "cpu/thread.hh"
#include "imc/imc.hh"

namespace nvdimmc::cpu
{
namespace
{

struct CpuFixture : public ::testing::Test
{
    CpuFixture()
        : map(16 * kMiB),
          dev(map, dram::Ddr4Timing::ddr4_1600(), true, false),
          bus(eq, dev, false),
          imc(eq, bus, imc::ImcConfig{}),
          cache(eq, imc, cacheParams())
    {
    }

    static CpuCacheModel::Params
    cacheParams()
    {
        CpuCacheModel::Params p;
        p.capacityLines = 128;
        return p;
    }

    void
    drain()
    {
        eq.runFor(20 * kUs);
    }

    EventQueue eq;
    dram::AddressMap map;
    dram::DramDevice dev;
    bus::MemoryBus bus;
    imc::Imc imc;
    CpuCacheModel cache;
};

TEST_F(CpuFixture, LoadMissFillsLine)
{
    std::array<std::uint8_t, 64> seed{};
    seed.fill(0x44);
    dev.writeBurst(map.decompose(0x1000), seed.data());

    std::array<std::uint8_t, 64> buf{};
    bool done = false;
    cache.load(0x1000, buf.data(), [&] { done = true; });
    drain();
    ASSERT_TRUE(done);
    EXPECT_EQ(buf[0], 0x44);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_EQ(cache.stats().loadMisses.value(), 1u);
}

TEST_F(CpuFixture, SecondLoadHits)
{
    bool d1 = false, d2 = false;
    cache.load(0x2000, nullptr, [&] { d1 = true; });
    drain();
    Tick before = eq.now();
    cache.load(0x2000, nullptr, [&] { d2 = true; });
    eq.runFor(cacheParams().hitLatency + 1);
    EXPECT_TRUE(d1);
    EXPECT_TRUE(d2);
    EXPECT_EQ(cache.stats().loadHits.value(), 1u);
    (void)before;
}

TEST_F(CpuFixture, StoreDirtiesLine)
{
    std::array<std::uint8_t, 64> w{};
    w.fill(0x13);
    cache.store(0x3000, w.data(), nullptr);
    drain();
    EXPECT_TRUE(cache.isDirty(0x3000));
    // The DRAM has NOT seen it yet.
    std::array<std::uint8_t, 64> r{};
    dev.readBurst(map.decompose(0x3000), r.data());
    EXPECT_EQ(r[0], 0x00);
}

TEST_F(CpuFixture, ClflushWritesBackAndDrops)
{
    std::array<std::uint8_t, 64> w{};
    w.fill(0x27);
    cache.store(0x4000, w.data(), nullptr);
    bool flushed = false;
    cache.clflush(0x4000, [&] { flushed = true; });
    drain();
    ASSERT_TRUE(flushed);
    EXPECT_FALSE(cache.contains(0x4000));
    std::array<std::uint8_t, 64> r{};
    dev.readBurst(map.decompose(0x4000), r.data());
    EXPECT_EQ(r[0], 0x27);
    EXPECT_EQ(cache.stats().flushWritebacks.value(), 1u);
}

TEST_F(CpuFixture, ClflushOfAbsentLineIsCheap)
{
    bool flushed = false;
    cache.clflush(0x5000, [&] { flushed = true; });
    eq.runFor(cacheParams().flushCost + 1);
    EXPECT_TRUE(flushed);
    EXPECT_EQ(cache.stats().flushWritebacks.value(), 0u);
}

TEST_F(CpuFixture, StaleReadHazardWithoutInvalidate)
{
    // CPU caches a line, then "the FPGA" updates DRAM behind its
    // back (paper §V-B). Without invalidation the CPU reads stale
    // data; after invalidation it sees the new bytes.
    bool ignore = false;
    cache.load(0x6000, nullptr, [&] { ignore = true; });
    drain();

    std::array<std::uint8_t, 64> fresh{};
    fresh.fill(0xAB);
    dev.writeBurst(map.decompose(0x6000), fresh.data());

    std::array<std::uint8_t, 64> buf{};
    cache.load(0x6000, buf.data(), nullptr);
    drain();
    EXPECT_EQ(buf[0], 0x00) << "stale cached copy expected";

    cache.invalidate(0x6000);
    cache.load(0x6000, buf.data(), nullptr);
    drain();
    EXPECT_EQ(buf[0], 0xAB);
}

TEST_F(CpuFixture, NtStoreBypassesCache)
{
    std::array<std::uint8_t, 64> w{};
    w.fill(0x66);
    ASSERT_TRUE(cache.storeNt(0x7000, w.data(), nullptr));
    drain();
    EXPECT_FALSE(cache.contains(0x7000));
    std::array<std::uint8_t, 64> r{};
    dev.readBurst(map.decompose(0x7000), r.data());
    EXPECT_EQ(r[0], 0x66);
}

TEST_F(CpuFixture, LoadsSurviveReadQueueRejection)
{
    // Regression: when the iMC read queue rejects a miss, the retry
    // must keep the caller's completion alive (a moved-from callback
    // here once silently killed whole op chains under load).
    imc::ImcConfig small;
    small.readQueueCap = 2;
    imc::Imc tiny_imc(eq, bus, small);
    CpuCacheModel tiny_cache(eq, tiny_imc, cacheParams());

    int done = 0;
    const int n = 64;
    for (int i = 0; i < n; ++i) {
        tiny_cache.load(static_cast<Addr>(i) * 4096, nullptr,
                        [&] { ++done; });
    }
    eq.runFor(2 * kMs);
    EXPECT_EQ(done, n);
}

TEST_F(CpuFixture, CapacityEvictionWritesDirtyVictims)
{
    std::array<std::uint8_t, 64> w{};
    w.fill(0x31);
    // Fill beyond capacity with dirty lines.
    for (std::uint64_t i = 0; i < 200; ++i)
        cache.store(i * 64, w.data(), nullptr);
    drain();
    EXPECT_LE(cache.residentLines(), cacheParams().capacityLines);
    EXPECT_GT(cache.stats().capacityEvictions.value(), 0u);
}

TEST_F(CpuFixture, MemcpyEngineReadMatchesArray)
{
    std::array<std::uint8_t, 64> seed{};
    for (std::uint32_t i = 0; i < 16; ++i) {
        seed.fill(static_cast<std::uint8_t>(i + 1));
        dev.writeBurst(map.decompose(0x8000 + i * 64), seed.data());
    }
    MemcpyEngine engine(eq, imc, &cache);
    std::vector<std::uint8_t> buf(1024, 0);
    bool done = false;
    engine.read(0x8000, 1024, buf.data(), true, [&] { done = true; });
    drain();
    ASSERT_TRUE(done);
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(buf[i * 64], i + 1);
}

TEST_F(CpuFixture, MemcpyEngineWriteLandsInArray)
{
    MemcpyEngine engine(eq, imc, &cache);
    std::vector<std::uint8_t> src(4096, 0x3d);
    bool done = false;
    engine.writeNt(0x10000, 4096, src.data(), [&] { done = true; });
    drain();
    ASSERT_TRUE(done);
    std::array<std::uint8_t, 64> r{};
    dev.readBurst(map.decompose(0x10000 + 4032), r.data());
    EXPECT_EQ(r[0], 0x3d);
}

TEST_F(CpuFixture, MemcpyReadLatencyScalesWithMlp)
{
    MemcpyParams p1;
    p1.parallelism = 1;
    MemcpyParams p10;
    p10.parallelism = 10;
    MemcpyEngine slow(eq, imc, nullptr, p1);
    MemcpyEngine fast(eq, imc, nullptr, p10);

    Tick t_slow = 0, t_fast = 0;
    Tick start = eq.now();
    bool done = false;
    slow.read(0, 4096, nullptr, false, [&] {
        t_slow = eq.now() - start;
        done = true;
    });
    drain();
    ASSERT_TRUE(done);

    start = eq.now();
    done = false;
    fast.read(0, 4096, nullptr, false, [&] {
        t_fast = eq.now() - start;
        done = true;
    });
    drain();
    ASSERT_TRUE(done);
    EXPECT_LT(t_fast * 3, t_slow) << "MLP must speed reads up a lot";
}

TEST_F(CpuFixture, NtWritePacingLimitsSingleThreadRate)
{
    MemcpyParams p;
    p.ntIssueGap = 10 * kNs;
    MemcpyEngine engine(eq, imc, nullptr, p);
    Tick start = eq.now();
    bool done = false;
    engine.writeNt(0, 4096, nullptr, [&] { done = true; });
    drain();
    ASSERT_TRUE(done);
    // 64 lines at one per 10 ns: at least 640 ns.
    EXPECT_GE(eq.now() - start, 640 * kNs);
}

TEST_F(CpuFixture, BulkModeAgreesWithDetailedOnThroughput)
{
    // Stream many 4 KB reads both ways; rates should be in the same
    // ballpark (the bulk model is calibrated against the detailed
    // path).
    auto measure = [&](bool bulk) {
        EventQueue local_eq;
        dram::DramDevice local_dev(map, dram::Ddr4Timing::ddr4_1600(),
                                   false, false);
        bus::MemoryBus local_bus(local_eq, local_dev, false);
        imc::Imc local_imc(local_eq, local_bus, imc::ImcConfig{});
        MemcpyParams p;
        p.bulkMode = bulk;
        MemcpyEngine engine(local_eq, local_imc, nullptr, p);

        std::uint64_t ops = 0;
        Addr next = 0;
        std::function<void()> loop = [&] {
            ++ops;
            next = (next + 4096) % (8 * kMiB);
            engine.read(next, 4096, nullptr, false, loop);
        };
        engine.read(0, 4096, nullptr, false, loop);
        Tick window = 2 * kMs;
        local_eq.runFor(window);
        return bytesPerTickToMBps(ops * 4096, window);
    };
    double detailed = measure(false);
    double bulk = measure(true);
    EXPECT_GT(detailed, 1000.0);
    EXPECT_GT(bulk, 1000.0);
    EXPECT_NEAR(bulk / detailed, 1.0, 0.5);
}

TEST(WorkerThreadTest, RunsOpsAndCollectsStats)
{
    EventQueue eq;
    int launched = 0;
    WorkerThread w(eq, "t0", [&](std::function<void(std::uint64_t)> done) {
        ++launched;
        eq.scheduleAfter(1 * kUs, [done] { done(4096); });
    });
    w.start();
    eq.runFor(10 * kUs + 1);
    w.stop();
    eq.runFor(2 * kUs);
    EXPECT_FALSE(w.running());
    EXPECT_GE(w.opsCompleted(), 9u);
    EXPECT_EQ(w.bytesMoved(), w.opsCompleted() * 4096);
    EXPECT_NEAR(ticksToUs(w.opLatency().percentile(50)), 1.0, 0.2);
}

TEST(WorkerThreadTest, ResetStatsClearsWindow)
{
    EventQueue eq;
    WorkerThread w(eq, "t0", [&](std::function<void(std::uint64_t)> done) {
        eq.scheduleAfter(kUs, [done] { done(64); });
    });
    w.start();
    eq.runFor(5 * kUs);
    EXPECT_GT(w.opsCompleted(), 0u);
    w.resetStats();
    EXPECT_EQ(w.opsCompleted(), 0u);
    w.stop();
    eq.runFor(2 * kUs);
}

} // namespace
} // namespace nvdimmc::cpu
