/**
 * @file
 * Host iMC tests: scheduling, data integrity, WPQ semantics, refresh
 * generation with programmable registers, and the bulk model.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "imc/imc.hh"
#include "imc/scheduler.hh"

namespace nvdimmc::imc
{
namespace
{

using dram::Ddr4Op;

struct ImcFixture : public ::testing::Test
{
    ImcFixture()
        : map(16 * kMiB),
          dev(map, dram::Ddr4Timing::ddr4_1600(), true, false),
          bus(eq, dev, false)
    {
    }

    Imc&
    makeImc(ImcConfig cfg = {})
    {
        imc = std::make_unique<Imc>(eq, bus, cfg);
        return *imc;
    }

    EventQueue eq;
    dram::AddressMap map;
    dram::DramDevice dev;
    bus::MemoryBus bus;
    std::unique_ptr<Imc> imc;
};

TEST_F(ImcFixture, WriteThenReadReturnsData)
{
    Imc& m = makeImc();
    std::array<std::uint8_t, 64> w{}, r{};
    for (int i = 0; i < 64; ++i)
        w[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);

    bool read_done = false;
    ASSERT_TRUE(m.writeLine(0x1000, w.data(), nullptr));
    // Drain the WPQ before reading so we exercise the array path, not
    // just forwarding.
    eq.runFor(5 * kUs);
    ASSERT_TRUE(m.readLine(0x1000, r.data(), [&] { read_done = true; }));
    eq.runFor(5 * kUs);
    ASSERT_TRUE(read_done);
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 64), 0);
}

TEST_F(ImcFixture, WpqForwardsYoungestData)
{
    Imc& m = makeImc();
    std::array<std::uint8_t, 64> w1{}, w2{}, r{};
    w1.fill(0x11);
    w2.fill(0x22);
    ASSERT_TRUE(m.writeLine(0x2000, w1.data(), nullptr));
    ASSERT_TRUE(m.writeLine(0x2000, w2.data(), nullptr));
    bool done = false;
    ASSERT_TRUE(m.readLine(0x2000, r.data(), [&] { done = true; }));
    EXPECT_GE(m.stats().wpqForwards.value(), 1u);
    eq.runFor(1 * kUs);
    ASSERT_TRUE(done);
    EXPECT_EQ(r[0], 0x22);
}

TEST_F(ImcFixture, PostedWritesCompleteImmediately)
{
    Imc& m = makeImc();
    bool posted = false;
    ASSERT_TRUE(m.writeLine(0x3000, nullptr, [&] { posted = true; }));
    EXPECT_TRUE(posted) << "writes are posted at WPQ acceptance";
}

TEST_F(ImcFixture, ReadLatencyIsRealistic)
{
    Imc& m = makeImc();
    bool done = false;
    Tick start = eq.now();
    Tick finish = 0;
    ASSERT_TRUE(m.readLine(0x4000, nullptr, [&] {
        done = true;
        finish = eq.now();
    }));
    eq.runFor(2 * kUs);
    ASSERT_TRUE(done);
    Tick lat = finish - start;
    const auto& t = dev.timing();
    // At least ACT + tRCD + tCL + burst; at most a microsecond idle.
    EXPECT_GE(lat, t.tRCD + t.tCL);
    EXPECT_LE(lat, 1 * kUs);
}

TEST_F(ImcFixture, RefreshCadenceFollowsTrefi)
{
    ImcConfig cfg;
    cfg.refresh = dram::RefreshRegisters::nvdimmc();
    Imc& m = makeImc(cfg);
    (void)m;
    eq.runFor(10 * cfg.refresh.tREFI + kUs);
    // ~10 refreshes in 10 tREFI.
    EXPECT_GE(dev.refreshCount(), 9u);
    EXPECT_LE(dev.refreshCount(), 11u);
}

TEST_F(ImcFixture, RefreshIssuesPreaWhenBanksOpen)
{
    ImcConfig cfg;
    Imc& m = makeImc(cfg);
    // Generate some open-bank traffic right before the refresh due.
    for (int i = 0; i < 8; ++i)
        m.readLine(static_cast<Addr>(i) * 8192 * 16, nullptr, nullptr);
    eq.runFor(cfg.refresh.tREFI + kUs);
    EXPECT_GE(dev.stats().prechargeAlls.value(), 1u);
    EXPECT_GE(dev.refreshCount(), 1u);
    EXPECT_EQ(dev.stats().violations.value(), 0u);
}

TEST_F(ImcFixture, ProgrammedTrfcBlocksHost)
{
    ImcConfig cfg;
    cfg.refresh = dram::RefreshRegisters::nvdimmc(); // 1250 ns.
    Imc& m = makeImc(cfg);
    eq.runFor(cfg.refresh.tREFI + 10 * kNs);
    ASSERT_GE(dev.refreshCount(), 1u);
    Tick ref_at = m.lastRefreshAt();
    EXPECT_EQ(m.blockedUntil(), ref_at + 1250 * kNs);

    // A read submitted during the blackout completes only after it.
    bool done = false;
    Tick finish = 0;
    m.readLine(0, nullptr, [&] {
        done = true;
        finish = eq.now();
    });
    eq.runFor(5 * kUs);
    ASSERT_TRUE(done);
    EXPECT_GE(finish, m.blockedUntil());
}

TEST_F(ImcFixture, ReprogrammingRefreshTakesEffect)
{
    ImcConfig cfg;
    Imc& m = makeImc(cfg);
    eq.runFor(3 * cfg.refresh.tREFI + kUs);
    std::uint64_t before = dev.refreshCount();
    dram::RefreshRegisters fast;
    fast.tRFC = 1250 * kNs;
    fast.tREFI = 1950 * kNs; // tREFI4.
    m.programRefresh(fast);
    eq.runFor(4 * 7800 * kNs);
    std::uint64_t delta = dev.refreshCount() - before;
    // 31.2 us at one refresh per 1.95 us ~= 16.
    EXPECT_GE(delta, 13u);
    EXPECT_LE(delta, 18u);
}

TEST_F(ImcFixture, QueueBackpressure)
{
    ImcConfig cfg;
    cfg.readQueueCap = 4;
    Imc& m = makeImc(cfg);
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        if (m.readLine(static_cast<Addr>(i) * 64, nullptr, nullptr))
            ++accepted;
    }
    EXPECT_LE(accepted, 5); // Cap + possibly one issued immediately.
    bool space_seen = false;
    m.whenSpace([&] { space_seen = true; });
    eq.runFor(2 * kUs);
    EXPECT_TRUE(space_seen);
}

TEST_F(ImcFixture, WpqDrainsToArray)
{
    Imc& m = makeImc();
    std::array<std::uint8_t, 64> w{};
    w.fill(0x5a);
    ASSERT_TRUE(m.writeLine(0x8000, w.data(), nullptr));
    eq.runFor(10 * kUs);
    EXPECT_EQ(m.wpqDepth(), 0u);
    std::array<std::uint8_t, 64> r{};
    dev.readBurst(map.decompose(0x8000), r.data());
    EXPECT_EQ(r[0], 0x5a);
}

TEST_F(ImcFixture, AdrFlushCommitsWpq)
{
    Imc& m = makeImc();
    std::array<std::uint8_t, 64> w{};
    w.fill(0x77);
    ASSERT_TRUE(m.writeLine(0x9000, w.data(), nullptr));
    // Flush before the scheduler drains it.
    std::size_t flushed = m.adrFlushWpq();
    EXPECT_GE(flushed, 0u);
    std::array<std::uint8_t, 64> r{};
    dev.readBurst(map.decompose(0x9000), r.data());
    EXPECT_EQ(r[0], 0x77);
}

TEST_F(ImcFixture, DropWpqLosesStores)
{
    ImcConfig cfg;
    cfg.wpqWatermark = 64; // Never drain eagerly.
    Imc& m = makeImc(cfg);
    std::array<std::uint8_t, 64> w{};
    w.fill(0x99);
    ASSERT_TRUE(m.writeLine(0xa000, w.data(), nullptr));
    std::size_t lost = m.dropWpq();
    EXPECT_EQ(lost, 1u);
    std::array<std::uint8_t, 64> r{};
    dev.readBurst(map.decompose(0xa000), r.data());
    EXPECT_EQ(r[0], 0x00) << "store must have died in the WPQ";
}

TEST_F(ImcFixture, ThroughputSaturatesNearChannelPeak)
{
    // Stream reads with high parallelism; expect a large fraction of
    // the 12.8 GB/s channel.
    Imc& m = makeImc();
    std::uint64_t completed = 0;
    unsigned in_flight = 0;
    Addr next = 0;
    std::function<void()> pump = [&] {
        while (in_flight < 32) {
            bool ok = m.readLine(next % (8 * kMiB), nullptr, [&] {
                --in_flight;
                ++completed;
                pump();
            });
            if (!ok)
                break;
            next += 64;
            ++in_flight;
        }
    };
    pump();
    Tick window = 200 * kUs;
    eq.runFor(window);
    double mbps = bytesPerTickToMBps(completed * 64, window);
    EXPECT_GT(mbps, 6000.0);
    EXPECT_LT(mbps, 12800.0);
    EXPECT_EQ(dev.stats().violations.value(), 0u);
}

TEST_F(ImcFixture, BulkTransferRatesAndRefreshStalls)
{
    ImcConfig cfg;
    cfg.refresh = dram::RefreshRegisters::nvdimmc();
    Imc& m = makeImc(cfg);

    // Single 4 KB bulk read takes about 4096B / streamRead rate.
    bool done = false;
    Tick finish = 0;
    m.bulkTransfer(4096, false, [&] {
        done = true;
        finish = eq.now();
    });
    eq.runFor(10 * kUs);
    ASSERT_TRUE(done);
    double expect_us =
        4096.0 / (cfg.streamReadMBps * 1e6) * 1e6; // ~1.1 us.
    EXPECT_NEAR(ticksToUs(finish), expect_us, 0.5);
}

TEST_F(ImcFixture, BulkThroughputDropsWithFasterRefresh)
{
    auto measure = [&](Tick trefi) {
        EventQueue local_eq;
        dram::DramDevice local_dev(map, dram::Ddr4Timing::ddr4_1600(),
                                   false, false);
        bus::MemoryBus local_bus(local_eq, local_dev, false);
        ImcConfig cfg;
        cfg.refresh.tRFC = 1250 * kNs;
        cfg.refresh.tREFI = trefi;
        Imc local(local_eq, local_bus, cfg);
        std::uint64_t ops = 0;
        std::function<void()> next = [&] {
            ++ops;
            local.bulkTransfer(4096, false, next);
        };
        local.bulkTransfer(4096, false, next);
        Tick window = 5 * kMs;
        local_eq.runFor(window);
        return bytesPerTickToMBps(ops * 4096, window);
    };

    double normal = measure(7800 * kNs);
    double trefi2 = measure(3900 * kNs);
    double trefi4 = measure(1950 * kNs);
    EXPECT_GT(normal, trefi2);
    EXPECT_GT(trefi2, trefi4);
    // Raw DRAM throughput scales with channel availability
    // (1 - tRFC/tREFI); the paper's smaller Fig 13 drops (8%/17%)
    // come from per-op software hiding part of the blackout, which
    // the full-stack bench reproduces.
    double avail_norm = 1.0 - 1.25 / 7.8;
    EXPECT_NEAR(trefi2 / normal, (1.0 - 1.25 / 3.9) / avail_norm, 0.1);
    EXPECT_NEAR(trefi4 / normal, (1.0 - 1.25 / 1.95) / avail_norm,
                0.12);
}

TEST_F(ImcFixture, ThermalThrottlingHalvesTrefi)
{
    // Paper §II-B: above 85 C the refresh interval drops to 3.9 us.
    ImcConfig cfg;
    cfg.refresh = dram::RefreshRegisters::nvdimmc();
    Imc& m = makeImc(cfg);
    eq.runFor(10 * cfg.refresh.tREFI);
    std::uint64_t cool = dev.refreshCount();

    m.setTemperature(95.0);
    eq.runFor(10 * cfg.refresh.tREFI);
    std::uint64_t hot = dev.refreshCount() - cool;
    EXPECT_GE(hot, 2 * cool - 4) << "hot cadence must ~double";

    // Cooling down restores the base rate.
    m.setTemperature(40.0);
    eq.runFor(10 * cfg.refresh.tREFI);
    std::uint64_t cooled = dev.refreshCount() - cool - hot;
    EXPECT_LE(cooled, cool + 3);
}

TEST_F(ImcFixture, IdleSelfRefreshEntryAndExit)
{
    ImcConfig cfg;
    Imc& m = makeImc(cfg);
    m.enableIdleSelfRefresh(50 * kUs);

    eq.runFor(200 * kUs);
    EXPECT_TRUE(m.inSelfRefresh());
    EXPECT_TRUE(dev.inSelfRefresh());
    std::uint64_t refs_asleep = dev.refreshCount();

    // While asleep, no REF commands are driven (the DRAM refreshes
    // itself internally) — the NVMC would be starved.
    eq.runFor(100 * kUs);
    EXPECT_EQ(dev.refreshCount(), refs_asleep);

    // A request wakes the DRAM (SRX + tXS) and completes.
    bool done = false;
    Tick start = eq.now();
    Tick finish = 0;
    ASSERT_TRUE(m.readLine(0x1000, nullptr, [&] {
        done = true;
        finish = eq.now();
    }));
    eq.runFor(10 * kUs);
    ASSERT_TRUE(done);
    EXPECT_FALSE(m.inSelfRefresh());
    EXPECT_GE(finish - start, dev.timing().tXS);
    EXPECT_EQ(dev.stats().violations.value(), 0u);
}

TEST_F(ImcFixture, SelfRefreshRoundTripKeepsServing)
{
    ImcConfig cfg;
    Imc& m = makeImc(cfg);
    m.enableIdleSelfRefresh(30 * kUs);
    // Several sleep/wake cycles with requests in between.
    for (int round = 0; round < 4; ++round) {
        eq.runFor(150 * kUs);
        EXPECT_TRUE(m.inSelfRefresh()) << "round " << round;
        bool done = false;
        m.readLine(static_cast<Addr>(round) * 8192, nullptr,
                   [&] { done = true; });
        eq.runFor(10 * kUs);
        EXPECT_TRUE(done) << "round " << round;
    }
    EXPECT_EQ(dev.stats().violations.value(), 0u);
}

TEST(SchedulerUnit, FrFcfsPrefersRowHits)
{
    dram::AddressMap map(16 * kMiB);
    dram::Ddr4Timing t = dram::Ddr4Timing::ddr4_1600();
    TimingShadow shadow(map, t);

    // Open row 5 of bank 0.
    shadow.onActivate(0, 0, 5, 0);

    std::deque<MemRequest> rq;
    MemRequest miss;
    miss.kind = MemRequest::Kind::Read;
    miss.coord = {0, 0, 9, 0}; // Row miss.
    rq.push_back(miss);
    MemRequest hit;
    hit.kind = MemRequest::Kind::Read;
    hit.coord = {0, 0, 5, 3}; // Row hit.
    rq.push_back(hit);

    std::deque<MemRequest> wq;
    SchedDecision d = pickNext(rq, wq, false, shadow, map);
    EXPECT_EQ(d.action, SchedDecision::Action::Read);
    EXPECT_EQ(d.queueIndex, 1u);
}

TEST(SchedulerUnit, OldestFirstWithoutRowHits)
{
    dram::AddressMap map(16 * kMiB);
    dram::Ddr4Timing t = dram::Ddr4Timing::ddr4_1600();
    TimingShadow shadow(map, t);

    std::deque<MemRequest> rq;
    for (std::uint32_t r = 0; r < 3; ++r) {
        MemRequest req;
        req.kind = MemRequest::Kind::Read;
        req.coord = {0, 0, r + 1, 0};
        rq.push_back(req);
    }
    std::deque<MemRequest> wq;
    SchedDecision d = pickNext(rq, wq, false, shadow, map);
    EXPECT_EQ(d.queueIndex, 0u);
    EXPECT_EQ(d.action, SchedDecision::Action::Activate);
}

TEST(SchedulerUnit, WritesWaitUnlessDrainingOrNoReads)
{
    dram::AddressMap map(16 * kMiB);
    dram::Ddr4Timing t = dram::Ddr4Timing::ddr4_1600();
    TimingShadow shadow(map, t);

    std::deque<MemRequest> rq;
    MemRequest rd;
    rd.kind = MemRequest::Kind::Read;
    rd.coord = {0, 0, 1, 0};
    rq.push_back(rd);

    std::deque<MemRequest> wq;
    MemRequest wr;
    wr.kind = MemRequest::Kind::Write;
    wr.coord = {1, 0, 2, 0};
    wq.push_back(wr);

    SchedDecision d = pickNext(rq, wq, false, shadow, map);
    EXPECT_FALSE(d.fromWriteQueue);

    // Draining mode with a write row hit prefers the write.
    shadow.onActivate(map.flatBank(wr.coord), 1, 2, 0);
    d = pickNext(rq, wq, true, shadow, map);
    EXPECT_TRUE(d.fromWriteQueue);

    // No reads at all: writes are eligible regardless.
    rq.clear();
    d = pickNext(rq, wq, false, shadow, map);
    EXPECT_TRUE(d.fromWriteQueue);
}

} // namespace
} // namespace nvdimmc::imc
