/**
 * @file
 * Coverage for corners not exercised elsewhere: stats utilities, the
 * wear-leveler policy helpers, ECC parameters, media pipelining, iMC
 * bulk writes and refresh-walk edges, the pmem baseline driver, and
 * power-failure scenario variants.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include <sstream>
#include <vector>

#include "common/stats.hh"
#include "core/power.hh"
#include "core/system.hh"
#include "ftl/ecc.hh"
#include "ftl/wear_leveler.hh"
#include "nvm/delay_media.hh"
#include "nvm/pram.hh"

namespace nvdimmc
{
namespace
{

// --- Stats utilities ---

TEST(ThroughputMeterTest, RatesFollowUnits)
{
    ThroughputMeter m;
    for (int i = 0; i < 1000; ++i)
        m.recordOp(4096);
    EXPECT_EQ(m.ops(), 1000u);
    EXPECT_EQ(m.bytes(), 4096u * 1000u);
    // 4 MB over 1 ms = 4096 MB/s; 1000 ops over 1 ms = 1000 KIOPS.
    EXPECT_NEAR(m.mbps(1 * kMs), 4096.0, 1.0);
    EXPECT_NEAR(m.kiops(1 * kMs), 1000.0, 0.1);
    m.reset();
    EXPECT_EQ(m.ops(), 0u);
}

TEST(TimeSeriesTest, RecordsPoints)
{
    TimeSeries ts;
    ts.record(kMs, 100.0);
    ts.record(2 * kMs, 200.0);
    ASSERT_EQ(ts.points().size(), 2u);
    EXPECT_EQ(ts.points()[1].second, 200.0);
    ts.clear();
    EXPECT_TRUE(ts.points().empty());
}

TEST(StatRegistryTest, DumpsLiveValues)
{
    StatRegistry reg;
    double v = 1.0;
    reg.add("x", [&v] { return v; });
    v = 42.0;
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("x = 42"), std::string::npos);
}

// --- Wear leveler ---

TEST(WearLevelerTest, PicksLeastWornFreeBlock)
{
    EventQueue eq;
    nvm::ZNand nand(eq, nvm::ZNandParams::tiny());
    // Wear block 3 twice, block 7 once.
    for (int i = 0; i < 2; ++i) {
        nand.eraseBlock(3, [] {});
        eq.runAll();
    }
    nand.eraseBlock(7, [] {});
    eq.runAll();

    ftl::WearLeveler wl(nand);
    std::vector<std::uint64_t> free_list = {3, 7, 9};
    auto pick = wl.pickFreeBlock(free_list);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(free_list[*pick], 9u) << "virgin block preferred";

    free_list = {3, 7};
    pick = wl.pickFreeBlock(free_list);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(free_list[*pick], 7u);

    EXPECT_FALSE(wl.pickFreeBlock({}).has_value());
}

TEST(WearLevelerTest, ColdBlockNominatedOnlyBeyondThreshold)
{
    EventQueue eq;
    nvm::ZNand nand(eq, nvm::ZNandParams::tiny());
    ftl::WearLeveler wl(nand, /*static_threshold=*/4);

    // Uniform wear: nothing to do.
    EXPECT_FALSE(wl.pickColdBlock({1, 2}).has_value());

    // Wear block 0 far beyond the threshold.
    for (int i = 0; i < 6; ++i) {
        nand.eraseBlock(0, [] {});
        eq.runAll();
    }
    auto cold = wl.pickColdBlock({1, 2});
    ASSERT_TRUE(cold.has_value());
    EXPECT_EQ(*cold, 1u);
}

// --- ECC ---

TEST(EccTest, CleanMediaDecodesClean)
{
    ftl::Ecc::Params p;
    p.rawBitErrorMean = 0.0;
    ftl::Ecc ecc(p);
    for (int i = 0; i < 100; ++i) {
        auto r = ecc.decode();
        EXPECT_TRUE(r.correctable);
        EXPECT_EQ(r.bitErrors, 0u);
    }
    EXPECT_EQ(ecc.uncorrectableReads(), 0u);
}

TEST(EccTest, ModerateErrorsAreCorrected)
{
    ftl::Ecc::Params p;
    p.rawBitErrorMean = 3.0;
    p.correctableBits = 72;
    ftl::Ecc ecc(p);
    int corrected = 0;
    for (int i = 0; i < 500; ++i) {
        auto r = ecc.decode();
        EXPECT_TRUE(r.correctable);
        if (r.bitErrors > 0)
            ++corrected;
    }
    EXPECT_GT(corrected, 400);
    EXPECT_GT(ecc.correctedBits(), 1000u);
}

// --- Media pipelining ---

TEST(MediaPipelining, BackToBackOpsSerialize)
{
    EventQueue eq;
    nvm::Pram media(eq, 64 * kMiB);
    Tick t1 = 0, t2 = 0;
    media.readRange(0, 4096, nullptr, [&] { t1 = eq.now(); });
    media.readRange(8192, 4096, nullptr, [&] { t2 = eq.now(); });
    eq.runAll();
    EXPECT_GT(t2, t1);
    // Second op waits for the first's occupancy, so the gap is at
    // least the transfer time.
    EXPECT_GE(t2 - t1, usToTicks(4096.0 / 2000.0) - kNs);
}

TEST(DelayMediaWrite, SymmetricDelay)
{
    EventQueue eq;
    nvm::DelayMedia media(eq, 64 * kMiB, 5 * kUs);
    Tick tw = 0;
    media.writeRange(0, 4096, nullptr, [&] { tw = eq.now(); });
    eq.runAll();
    EXPECT_EQ(tw, 5 * kUs);
    EXPECT_EQ(media.stats().writes.value(), 1u);
}

// --- iMC bulk model edges ---

struct BulkFixture : public ::testing::Test
{
    BulkFixture()
        : map(16 * kMiB),
          dev(map, dram::Ddr4Timing::ddr4_1600(), false, false),
          bus(eq, dev, false)
    {
    }

    EventQueue eq;
    dram::AddressMap map;
    dram::DramDevice dev;
    bus::MemoryBus bus;
};

TEST_F(BulkFixture, BulkWriteFollowsStreamRate)
{
    imc::ImcConfig cfg;
    cfg.refreshEnabled = false; // Isolate the rate model.
    imc::Imc m(eq, bus, cfg);
    Tick done_at = 0;
    m.bulkTransfer(65536, true, [&] { done_at = eq.now(); });
    eq.runAll();
    double expect_us = 65536.0 / (cfg.streamWriteMBps * 1e6) * 1e6;
    EXPECT_NEAR(ticksToUs(done_at), expect_us + 0.04, 1.0);
}

TEST_F(BulkFixture, TransferStartingInsideBlackoutWaits)
{
    imc::ImcConfig cfg;
    cfg.refresh = dram::RefreshRegisters::nvdimmc();
    imc::Imc m(eq, bus, cfg);
    // Run until just after a REF fires; the iMC is now blocked.
    eq.runFor(cfg.refresh.tREFI + 100 * kNs);
    ASSERT_GT(m.blockedUntil(), eq.now());
    Tick blackout_end = m.blockedUntil();
    Tick done_at = 0;
    m.bulkTransfer(64, false, [&] { done_at = eq.now(); });
    eq.runFor(10 * kUs);
    EXPECT_GE(done_at, blackout_end);
}

// --- Baseline pmem driver ---

TEST(PmemDriverTest, LatencyStatsAccumulate)
{
    core::BaselineConfig cfg = core::BaselineConfig::scaledBench();
    cfg.capacityBytes = 64 * kMiB;
    cfg.memcpy.bulkMode = false;
    cfg.storeData = true;
    core::BaselineSystem sys(cfg);

    std::vector<std::uint8_t> buf(4096, 0x21);
    for (int i = 0; i < 4; ++i) {
        bool done = false;
        sys.driver().write(static_cast<Addr>(i) * 4096, 4096,
                           buf.data(), [&] { done = true; });
        while (!done && sys.eq().runOne()) {
        }
    }
    EXPECT_EQ(sys.driver().stats().writeOps.value(), 4u);
    EXPECT_GT(sys.driver().stats().latency.mean(), 0.0);

    bool done = false;
    std::vector<std::uint8_t> r(4096, 0);
    sys.eq().runFor(100 * kUs);
    sys.driver().read(0, 4096, r.data(), [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    EXPECT_EQ(r[0], 0x21);
    EXPECT_THROW(sys.driver().read(cfg.capacityBytes, 64, nullptr,
                                   [] {}),
                 PanicError);
}

// --- Power scenarios not covered elsewhere ---

TEST(PowerScenario, DumpSkipsCleanSlots)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    core::NvdimmcSystem sys(cfg);
    sys.precondition(0, 8, /*dirty=*/false);
    sys.precondition(8, 8, /*dirty=*/true);
    auto report =
        core::simulatePowerFailure(sys, core::PowerFailureScenario{});
    EXPECT_EQ(report.pagesDumped, 8u)
        << "only dirty slots need saving";
}

TEST(PowerScenario, SystemWithoutNvmcDumpsNothing)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.nvmcEnabled = false;
    cfg.media = core::MediaKind::Delay;
    cfg.mediaBytes = 64 * kMiB;
    cfg.driver.hypothetical = true;
    core::NvdimmcSystem sys(cfg);
    sys.precondition(0, 8, true);
    auto report =
        core::simulatePowerFailure(sys, core::PowerFailureScenario{});
    EXPECT_EQ(report.pagesDumped, 0u);
}

// --- Timing presets as parameterized sweep ---

class TimingBins
    : public ::testing::TestWithParam<dram::Ddr4Timing>
{
};

TEST_P(TimingBins, BankFsmHonoursEveryBin)
{
    const dram::Ddr4Timing t = GetParam();
    dram::Bank b;
    EXPECT_TRUE(b.canActivate(0, t).ok);
    b.activate(0, 1);
    EXPECT_FALSE(b.canRead(t.tRCD - 1, 1, t).ok);
    EXPECT_TRUE(b.canRead(t.tRCD, 1, t).ok);
    b.read(t.tRCD, t);
    EXPECT_FALSE(b.canPrecharge(t.tRAS - 1, t).ok);
    Tick pre_ok = std::max(t.tRAS, t.tRCD + t.tRTP);
    EXPECT_TRUE(b.canPrecharge(pre_ok, t).ok);
    b.precharge(pre_ok);
    EXPECT_FALSE(b.canActivate(pre_ok + t.tRP - 1, t).ok);
    Tick act_ok = std::max(pre_ok + t.tRP, t.tRC);
    EXPECT_TRUE(b.canActivate(act_ok, t).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Bins, TimingBins,
    ::testing::Values(dram::Ddr4Timing::ddr4_1600(),
                      dram::Ddr4Timing::ddr4_2400()),
    [](const ::testing::TestParamInfo<dram::Ddr4Timing>& info) {
        return info.param.tCK == 1250 ? "ddr4_1600" : "ddr4_2400";
    });

} // namespace
} // namespace nvdimmc
