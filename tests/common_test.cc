/**
 * @file
 * Unit tests for the simulation kernel and utilities.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/sim_mutex.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"

namespace nvdimmc
{
namespace
{

TEST(Types, UnitConversions)
{
    EXPECT_EQ(kNs, 1000u);
    EXPECT_EQ(kUs, 1000000u);
    EXPECT_DOUBLE_EQ(ticksToUs(7800 * kNs), 7.8);
    EXPECT_EQ(usToTicks(7.8), 7800 * kNs);
    EXPECT_NEAR(bytesPerTickToMBps(4096, 2230 * kNs), 1836.8, 1.0);
    EXPECT_NEAR(opsPerTickToKiops(1000, 1 * kMs), 1000.0, 0.01);
}

TEST(EventQueue, FiresInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(10, [&] { fired = true; });
    eq.cancel(id);
    eq.runAll();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelAfterFireIsHarmless)
{
    EventQueue eq;
    int fires = 0;
    EventId id = eq.schedule(10, [&] { ++fires; });
    eq.schedule(20, [&] { ++fires; });
    eq.runOne();
    eq.cancel(id); // Already fired.
    eq.runAll();
    EXPECT_EQ(fires, 2);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWhenEmpty)
{
    EventQueue eq;
    eq.runUntil(5000);
    EXPECT_EQ(eq.now(), 5000u);
    bool fired = false;
    eq.schedule(6000, [&] { fired = true; });
    eq.runUntil(5500);
    EXPECT_FALSE(fired);
    eq.runUntil(6000);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll();
    EXPECT_THROW(eq.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = kTickNever;
    eq.schedule(100, [&] {
        eq.scheduleAfter(25, [&] { seen = eq.now(); });
    });
    eq.runAll();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue eq;
    EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runAll();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, NestedSchedulingWhileRunning)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 100)
            eq.scheduleAfter(1, recurse);
    };
    eq.schedule(0, recurse);
    eq.runAll();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(Histogram, MeanMinMax)
{
    Histogram h;
    h.record(100);
    h.record(200);
    h.record(300);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 100u);
    EXPECT_EQ(h.max(), 300u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h;
    for (Tick t = 1; t <= 1000; ++t)
        h.record(t * kNs);
    Tick p10 = h.percentile(10);
    Tick p50 = h.percentile(50);
    Tick p99 = h.percentile(99);
    EXPECT_LE(p10, p50);
    EXPECT_LE(p50, p99);
    EXPECT_GE(p99, 500 * kNs);
    EXPECT_LE(h.percentile(0), h.percentile(100));
}

TEST(Histogram, MergeCombinesCounts)
{
    Histogram a, b;
    a.record(10);
    b.record(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, ZeroSample)
{
    Histogram h;
    h.record(0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, TopBucketPercentileIsDefined)
{
    // Samples landing in the top log2 bucket used to compute the
    // bucket's upper edge as 1 << 64 — undefined behaviour on a
    // 64-bit Tick. The edge must clamp to max() instead. Run under
    // UBSan this is a regression test for the shift.
    Histogram h;
    h.record(std::numeric_limits<Tick>::max());
    h.record(std::numeric_limits<Tick>::max() - 1);
    h.record(Tick{1} << 63);
    for (double p : {0.0, 50.0, 99.0, 100.0}) {
        Tick v = h.percentile(p);
        EXPECT_GE(v, h.min());
        EXPECT_LE(v, h.max());
    }
}

TEST(Histogram, MergeWithEmptyIsNeutral)
{
    Histogram full, empty;
    full.record(42);
    full.merge(empty);
    EXPECT_EQ(full.count(), 1u);
    EXPECT_EQ(full.min(), 42u);
    EXPECT_EQ(full.max(), 42u);

    // The other direction must not drag in the empty histogram's
    // min sentinel.
    Histogram target;
    target.merge(full);
    EXPECT_EQ(target.count(), 1u);
    EXPECT_EQ(target.min(), 42u);
    EXPECT_EQ(target.max(), 42u);
    EXPECT_DOUBLE_EQ(target.mean(), 42.0);
}

TEST(Histogram, SingleSamplePercentiles)
{
    Histogram h;
    h.record(777);
    EXPECT_EQ(h.percentile(0), 777u);
    EXPECT_EQ(h.percentile(50), 777u);
    EXPECT_EQ(h.percentile(100), 777u);
}

TEST(ThroughputMeter, ZeroIntervalYieldsZero)
{
    ThroughputMeter m;
    m.recordOp(4096);
    EXPECT_DOUBLE_EQ(m.mbps(0), 0.0);
    EXPECT_DOUBLE_EQ(m.kiops(0), 0.0);
    m.reset();
    EXPECT_EQ(m.ops(), 0u);
    EXPECT_EQ(m.bytes(), 0u);
}

TEST(StatRegistry, CountersHistogramsAndJson)
{
    Counter c;
    c.inc(3);
    Histogram h;
    h.record(100);
    h.record(300);

    StatRegistry reg;
    reg.addCounter("cnt", c);
    reg.addHistogram("lat", h);
    reg.add("answer", [] { return 42.0; });

    auto vals = reg.collect();
    auto find = [&](const std::string& n) {
        for (const auto& [name, v] : vals)
            if (name == n)
                return v;
        ADD_FAILURE() << "missing stat " << n;
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(find("cnt"), 3.0);
    EXPECT_DOUBLE_EQ(find("lat.count"), 2.0);
    EXPECT_DOUBLE_EQ(find("lat.mean"), 200.0);
    EXPECT_DOUBLE_EQ(find("lat.max"), 300.0);
    EXPECT_DOUBLE_EQ(find("answer"), 42.0);

    // Registered getters are live: later counter bumps show up.
    c.inc();
    EXPECT_DOUBLE_EQ(reg.collect()[0].second, 4.0);

    // The JSON dump is a single-line object (it gets embedded in
    // JSONL by the benches) with every registered key.
    std::ostringstream os;
    reg.dumpJson(os);
    std::string json = os.str();
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"cnt\":4"), std::string::npos);
    EXPECT_NE(json.find("\"lat.p50\":"), std::string::npos);
}

TEST(Trace, RoundTripWritesLoadableJson)
{
    const char* path = "trace_test_out.json";
    EXPECT_FALSE(trace::enabled());
    trace::start(path);
    EXPECT_TRUE(trace::enabled());

    trace::duration("track.a", "span", 1 * kUs, 3 * kUs);
    trace::instant("track.a", "blip", 2 * kUs);
    trace::counter("track.b", "depth", 2 * kUs, 7.0);
    EXPECT_EQ(trace::eventCount(), 3u);

    ASSERT_TRUE(trace::stop());
    EXPECT_FALSE(trace::enabled());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string json = buf.str();
    // A JSON array with per-track metadata plus our three events.
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"span\""), std::string::npos);
    EXPECT_NE(json.find("track.b.depth"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    std::remove(path);

    // With tracing off again the record calls are no-ops.
    trace::duration("track.a", "ignored", 0, 1);
    EXPECT_EQ(trace::eventCount(), 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ZipfSkewsLow)
{
    Rng r(11);
    std::uint64_t low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (r.zipf(1000, 0.8) < 100)
            ++low;
    }
    // With strong skew, far more than 10% of draws land in the first
    // 10% of ranks.
    EXPECT_GT(low, static_cast<std::uint64_t>(n) * 3 / 10);
    // Theta 0 degenerates to uniform.
    low = 0;
    for (int i = 0; i < n; ++i) {
        if (r.zipf(1000, 0.0) < 100)
            ++low;
    }
    EXPECT_NEAR(static_cast<double>(low) / n, 0.1, 0.02);
}

TEST(Config, ParseAndTypedGet)
{
    Config c = Config::parse("a=1,b=2.5,c=hello,d=true,e=0x10");
    EXPECT_EQ(c.getInt("a", 0), 1);
    EXPECT_DOUBLE_EQ(c.getDouble("b", 0), 2.5);
    EXPECT_EQ(c.getString("c", ""), "hello");
    EXPECT_TRUE(c.getBool("d", false));
    EXPECT_EQ(c.getInt("e", 0), 16);
    EXPECT_EQ(c.getInt("missing", 99), 99);
}

TEST(Config, MalformedInputsThrow)
{
    EXPECT_THROW(Config::parse("noequals"), FatalError);
    EXPECT_THROW(Config::parse("=value"), FatalError);
    Config c = Config::parse("a=xyz");
    EXPECT_THROW(c.getInt("a", 0), FatalError);
    EXPECT_THROW(c.getBool("a", false), FatalError);
}

TEST(SimMutex, FifoGrantOrder)
{
    EventQueue eq;
    SimMutex m(eq);
    std::vector<int> order;
    m.acquire([&] { order.push_back(0); });
    m.acquire([&] { order.push_back(1); });
    m.acquire([&] { order.push_back(2); });
    EXPECT_EQ(order.size(), 1u);
    EXPECT_EQ(m.waiters(), 2u);
    m.release();
    eq.runAll();
    // The second holder got the lock but has not released yet.
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    m.release();
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    m.release();
    EXPECT_FALSE(m.held());
    EXPECT_EQ(m.acquisitions(), 3u);
}

TEST(SimMutex, ReleaseUnheldPanics)
{
    EventQueue eq;
    SimMutex m(eq);
    EXPECT_THROW(m.release(), PanicError);
}

TEST(Logging, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
}

/** Property sweep: percentile never exceeds max or undercuts min. */
class HistogramProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HistogramProperty, PercentilesBounded)
{
    Rng r(static_cast<std::uint64_t>(GetParam()));
    Histogram h;
    for (int i = 0; i < 500; ++i)
        h.record(r.inRange(1, 1'000'000'000));
    for (double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
        Tick v = h.percentile(p);
        EXPECT_GE(v, h.min());
        EXPECT_LE(v, h.max());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Range(1, 11));

TEST(FlatMap, BasicInsertFindErase)
{
    FlatMap<std::uint32_t> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_FALSE(m.erase(7));

    m.insert_or_assign(7, 70);
    m.insert_or_assign(0, 1); // Key 0 must be a legal key.
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70u);
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 1u);
    EXPECT_EQ(m.size(), 2u);

    m.insert_or_assign(7, 71); // Overwrite, not duplicate.
    EXPECT_EQ(*m.find(7), 71u);
    EXPECT_EQ(m.size(), 2u);

    EXPECT_TRUE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.contains(0));
}

TEST(FlatMap, GrowsPastManyRehashes)
{
    FlatMap<std::uint32_t> m;
    const std::uint64_t n = 10000;
    for (std::uint64_t k = 0; k < n; ++k)
        m.insert_or_assign(k * 4096, static_cast<std::uint32_t>(k));
    EXPECT_EQ(m.size(), n);
    for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint32_t* v = m.find(k * 4096);
        ASSERT_NE(v, nullptr) << k;
        EXPECT_EQ(*v, static_cast<std::uint32_t>(k));
    }
    EXPECT_EQ(m.find(1), nullptr);
}

/**
 * Differential check of backward-shift deletion: mirror a random
 * insert/overwrite/erase stream against std::map and compare every
 * lookup. Sequential page numbers + a power-of-two table is exactly
 * the collision shape the splitmix64 mix must survive.
 */
TEST(FlatMap, RandomOpsMatchStdMap)
{
    Rng rng(77);
    FlatMap<std::uint32_t> m;
    std::map<std::uint64_t, std::uint32_t> ref;
    const std::uint64_t keys = 512; // Dense → heavy probe runs.
    for (int op = 0; op < 20000; ++op) {
        std::uint64_t k = rng.below(keys);
        if (rng.chance(0.55)) {
            auto v = static_cast<std::uint32_t>(rng.next());
            m.insert_or_assign(k, v);
            ref[k] = v;
        } else {
            EXPECT_EQ(m.erase(k), ref.erase(k) > 0) << "key " << k;
        }
        std::uint64_t probe = rng.below(keys);
        const std::uint32_t* got = m.find(probe);
        auto it = ref.find(probe);
        if (it == ref.end()) {
            EXPECT_EQ(got, nullptr) << "key " << probe;
        } else {
            ASSERT_NE(got, nullptr) << "key " << probe;
            EXPECT_EQ(*got, it->second);
        }
        EXPECT_EQ(m.size(), ref.size());
    }
}

TEST(FlatMap, ReserveAndClear)
{
    FlatMap<std::uint32_t> m;
    m.reserve(1000);
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.insert_or_assign(k, 1);
    EXPECT_EQ(m.size(), 1000u);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(5), nullptr);
    m.insert_or_assign(5, 2);
    EXPECT_EQ(*m.find(5), 2u);
}

} // namespace
} // namespace nvdimmc
