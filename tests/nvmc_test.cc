/**
 * @file
 * NVMC tests: deserializer, refresh detector, CP protocol, reserved
 * layout, DMA windowing and the window-gated DDR4 master.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include <cstring>
#include <vector>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "common/random.hh"
#include "nvmc/cp_protocol.hh"
#include "nvmc/ddr4_controller.hh"
#include "nvmc/deserializer.hh"
#include "nvmc/dma_engine.hh"
#include "nvmc/refresh_detector.hh"

namespace nvdimmc::nvmc
{
namespace
{

using dram::Ddr4Op;

TEST(DeserializerTest, AssemblesEightSamplesLsbFirst)
{
    std::vector<std::uint8_t> words;
    Deserializer d([&](std::uint8_t w) { words.push_back(w); });
    // 0b10110010 sampled LSB first.
    for (bool bit : {false, true, false, false, true, true, false,
                     true}) {
        d.sample(bit);
    }
    ASSERT_EQ(words.size(), 1u);
    EXPECT_EQ(words[0], 0b10110010);
    EXPECT_EQ(d.pendingBits(), 0u);
}

TEST(DeserializerTest, PartialWordPending)
{
    Deserializer d(nullptr);
    d.sample(true);
    d.sample(false);
    EXPECT_EQ(d.pendingBits(), 2u);
}

TEST(DeserializerTest, OutputDelayIsFiveClocks)
{
    EXPECT_EQ(Deserializer::outputDelay(1250), 5u * 1250u);
}

struct DetectorFixture : public ::testing::Test
{
    void
    makeDetector(double miss = 0.0, double false_rate = 0.0)
    {
        RefreshDetector::Params p;
        p.tCK = 1250;
        p.missRate = miss;
        p.falseRate = false_rate;
        det = std::make_unique<RefreshDetector>(
            eq, p, [this](Tick t) { detections.push_back(t); });
    }

    void
    drive(Ddr4Op op, Tick at)
    {
        eq.runUntil(at);
        det->observeFrame(dram::encodeCommand({op, 0, 0, 0, 0}), at);
    }

    EventQueue eq;
    std::unique_ptr<RefreshDetector> det;
    std::vector<Tick> detections;
};

TEST_F(DetectorFixture, DetectsRefreshWithPipelineDelay)
{
    makeDetector();
    drive(Ddr4Op::Refresh, 1000);
    eq.runAll();
    ASSERT_EQ(detections.size(), 1u);
    EXPECT_EQ(detections[0], 1000u) << "reports the command tick";
    EXPECT_EQ(det->stats().refreshesDetected.value(), 1u);
}

TEST_F(DetectorFixture, IgnoresEveryOtherCommand)
{
    makeDetector();
    Tick t = 0;
    for (Ddr4Op op :
         {Ddr4Op::Activate, Ddr4Op::Read, Ddr4Op::Write,
          Ddr4Op::Precharge, Ddr4Op::PrechargeAll,
          Ddr4Op::ModeRegisterSet, Ddr4Op::ZqCalibration,
          Ddr4Op::SelfRefreshEnter, Ddr4Op::SelfRefreshExit}) {
        drive(op, t += 10000);
    }
    eq.runAll();
    EXPECT_TRUE(detections.empty());
    EXPECT_EQ(det->stats().selfRefreshIgnored.value(), 2u);
}

TEST_F(DetectorFixture, InjectedMissesSuppressDetection)
{
    makeDetector(1.0, 0.0);
    for (int i = 0; i < 10; ++i)
        drive(Ddr4Op::Refresh, (i + 1) * 10000);
    eq.runAll();
    EXPECT_TRUE(detections.empty());
    EXPECT_EQ(det->stats().injectedMisses.value(), 10u);
}

TEST_F(DetectorFixture, InjectedFalsePositivesFire)
{
    makeDetector(0.0, 1.0);
    drive(Ddr4Op::Read, 5000);
    eq.runAll();
    EXPECT_EQ(detections.size(), 1u);
    EXPECT_EQ(det->stats().injectedFalsePositives.value(), 1u);
}

TEST(CpProtocolTest, CommandRoundTrip)
{
    CpCommand cmd;
    cmd.phase = 42;
    cmd.opcode = CpOpcode::Cachefill;
    cmd.dramSlot = 0x123456;
    cmd.nandPage = 0x1234567890ull;
    std::uint8_t line[64];
    encodeCpCommand(cmd, line);
    EXPECT_EQ(decodeCpCommand(line), cmd);
}

TEST(CpProtocolTest, MergedCommandRoundTrip)
{
    CpCommand cmd;
    cmd.phase = 7;
    cmd.opcode = CpOpcode::WritebackCachefill;
    cmd.dramSlot = 11;
    cmd.nandPage = 22;
    cmd.dramSlot2 = 33;
    cmd.nandPage2 = 0xdeadbeefull;
    std::uint8_t line[64];
    encodeCpCommand(cmd, line);
    EXPECT_EQ(decodeCpCommand(line), cmd);
}

class CpRandomRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(CpRandomRoundTrip, RandomizedFields)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 200; ++i) {
        CpCommand cmd;
        cmd.phase = static_cast<std::uint8_t>(rng.inRange(1, 255));
        cmd.opcode = static_cast<CpOpcode>(rng.below(4));
        cmd.dramSlot = static_cast<std::uint32_t>(rng.below(1u << 24));
        cmd.nandPage = rng.below(1ull << 48);
        cmd.dramSlot2 = static_cast<std::uint32_t>(rng.next());
        cmd.nandPage2 = rng.next64();
        std::uint8_t line[64];
        encodeCpCommand(cmd, line);
        ASSERT_EQ(decodeCpCommand(line), cmd);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpRandomRoundTrip,
                         ::testing::Range(1, 5));

TEST(CpProtocolTest, AckRoundTrip)
{
    CpAck ack{9, 1};
    std::uint8_t line[64];
    encodeCpAck(ack, line);
    EXPECT_EQ(decodeCpAck(line), ack);
}

TEST(SlotMetadataTest, RoundTrip)
{
    SlotMetadata m;
    m.nandPage = 0x1122334455ull;
    m.valid = true;
    m.dirty = true;
    std::uint8_t raw[16];
    encodeSlotMetadata(m, raw);
    EXPECT_EQ(decodeSlotMetadata(raw), m);

    m.dirty = false;
    encodeSlotMetadata(m, raw);
    EXPECT_EQ(decodeSlotMetadata(raw), m);
}

TEST(ReservedLayoutTest, PartitionsDoNotOverlap)
{
    ReservedLayout layout(64 * kMiB, 4);
    EXPECT_GT(layout.slotCount(), 0u);
    // CP page, metadata, slots are disjoint and ordered.
    EXPECT_GE(layout.metadataBase(), 4096u);
    EXPECT_GE(layout.slotAddr(0),
              layout.metadataBase() + layout.metadataBytes());
    // Everything fits.
    EXPECT_LE(layout.slotAddr(layout.slotCount() - 1) + 4096,
              64 * kMiB);
    // Command/ack lines are inside the CP page and disjoint.
    EXPECT_LT(layout.commandAddr(3), layout.ackAddr(0));
    EXPECT_LT(layout.ackAddr(3) + 64, 4096u);
}

TEST(ReservedLayoutTest, MetadataCoversEverySlot)
{
    ReservedLayout layout(16 * kMiB, 1);
    Addr last = layout.metadataAddr(layout.slotCount() - 1);
    EXPECT_LT(last + ReservedLayout::kMetaEntryBytes,
              layout.metadataBase() + layout.metadataBytes() + 1);
}

TEST(ReservedLayoutTest, RejectsBadParameters)
{
    EXPECT_THROW(ReservedLayout(1024, 1), FatalError);
    EXPECT_THROW(ReservedLayout(64 * kMiB, 0), FatalError);
    EXPECT_THROW(ReservedLayout(64 * kMiB, 200), FatalError);
}

TEST(CpOpcodeTest, Names)
{
    EXPECT_STREQ(toString(CpOpcode::Cachefill), "CACHEFILL");
    EXPECT_STREQ(toString(CpOpcode::Writeback), "WRITEBACK");
}

struct CtrlFixture : public ::testing::Test
{
    CtrlFixture()
        : map(16 * kMiB),
          dev(map, dram::Ddr4Timing::ddr4_1600(), true, false),
          bus(eq, dev, false),
          ctrl(eq, bus)
    {
    }

    EventQueue eq;
    dram::AddressMap map;
    dram::DramDevice dev;
    bus::MemoryBus bus;
    NvmcDdr4Controller ctrl;
};

TEST_F(CtrlFixture, Transfers4KbInsideOneWindow)
{
    // Simulate the post-REF state.
    eq.runUntil(10 * kUs);
    dev.issue({Ddr4Op::Refresh, 0, 0, 0, 0}, eq.now());
    ctrl.noteRefresh(eq.now());
    Tick ws = eq.now() + dev.timing().tRFC;
    Tick we = eq.now() + 1250 * kNs - 30 * kNs;

    std::vector<std::uint8_t> data(4096, 0x5c);
    std::uint32_t moved = 0;
    ctrl.transferInWindow(8192, 4096, true, nullptr, data.data(), ws,
                          we, [&](std::uint32_t n) { moved = n; });
    eq.runAll();
    EXPECT_EQ(moved, 4096u);
    EXPECT_EQ(dev.stats().violations.value(), 0u);
    EXPECT_EQ(bus.conflictCount(), 0u);
    // Data actually landed.
    std::uint8_t burst[64];
    dev.readBurst(map.decompose(8192), burst);
    EXPECT_EQ(burst[0], 0x5c);
    // Bank left precharged for the host.
    EXPECT_TRUE(dev.allBanksIdle());
}

TEST_F(CtrlFixture, TruncatesWhenWindowTooSmall)
{
    eq.runUntil(10 * kUs);
    dev.issue({Ddr4Op::Refresh, 0, 0, 0, 0}, eq.now());
    ctrl.noteRefresh(eq.now());
    Tick ws = eq.now() + dev.timing().tRFC;
    Tick we = ws + 120 * kNs; // Far too small for 4 KB.

    std::uint32_t moved = 4096;
    ctrl.transferInWindow(0, 4096, false, nullptr, nullptr, ws, we,
                          [&](std::uint32_t n) { moved = n; });
    eq.runAll();
    EXPECT_LT(moved, 4096u);
    EXPECT_GE(ctrl.stats().truncatedTransfers.value(), 1u);
    EXPECT_EQ(dev.stats().violations.value(), 0u);
}

TEST_F(CtrlFixture, ReadsReturnArrayData)
{
    // Seed the array.
    std::uint8_t burst[64];
    std::memset(burst, 0x7e, 64);
    for (int i = 0; i < 64; ++i)
        dev.writeBurst(map.decompose(static_cast<Addr>(i) * 64), burst);

    eq.runUntil(10 * kUs);
    dev.issue({Ddr4Op::Refresh, 0, 0, 0, 0}, eq.now());
    ctrl.noteRefresh(eq.now());
    Tick ws = eq.now() + dev.timing().tRFC;
    Tick we = eq.now() + 1220 * kNs;

    std::vector<std::uint8_t> buf(4096, 0);
    std::uint32_t moved = 0;
    ctrl.transferInWindow(0, 4096, false, buf.data(), nullptr, ws, we,
                          [&](std::uint32_t n) { moved = n; });
    eq.runAll();
    EXPECT_EQ(moved, 4096u);
    EXPECT_EQ(buf[0], 0x7e);
    EXPECT_EQ(buf[4095], 0x7e);
}

TEST_F(CtrlFixture, DrivingDuringDeviceRefreshIsViolation)
{
    eq.runUntil(10 * kUs);
    dev.issue({Ddr4Op::Refresh, 0, 0, 0, 0}, eq.now());
    // Gate disabled: the controller was never told about the refresh
    // and its window wrongly starts immediately.
    Tick ws = eq.now() + 10 * kNs;
    Tick we = eq.now() + 1250 * kNs;
    ctrl.transferInWindow(0, 256, true, nullptr, nullptr, ws, we,
                          [](std::uint32_t) {});
    eq.runAll();
    EXPECT_GE(dev.stats().violations.value(), 1u);
}

struct DmaFixture : public CtrlFixture
{
    DmaFixture() : dma(eq, ctrl, 4096) {}

    /** Grant one legal window at the current tick. */
    std::pair<Tick, Tick>
    grantWindow()
    {
        dev.issue({Ddr4Op::Refresh, 0, 0, 0, 0}, eq.now());
        ctrl.noteRefresh(eq.now());
        Tick ws = eq.now() + dev.timing().tRFC;
        Tick we = eq.now() + 1250 * kNs - 30 * kNs;
        return {ws, we};
    }

    DmaEngine dma;
};

TEST_F(DmaFixture, BudgetCapsBytesPerWindow)
{
    eq.runUntil(10 * kUs);
    auto buf = std::make_shared<std::vector<std::uint8_t>>(8192, 1);
    bool finished = false;
    DmaRequest req;
    req.addr = 0;
    req.bytes = 8192;
    req.isWrite = true;
    req.buffer = buf;
    req.done = [&] { finished = true; };
    dma.enqueue(std::move(req));

    auto [ws1, we1] = grantWindow();
    dma.runWindow(ws1, we1, nullptr);
    eq.runUntil(eq.now() + 7800 * kNs);
    EXPECT_FALSE(finished) << "8 KB needs two 4 KB windows";
    EXPECT_EQ(dma.stats().windowCarryovers.value(), 1u);

    auto [ws2, we2] = grantWindow();
    dma.runWindow(ws2, we2, nullptr);
    eq.runAll();
    EXPECT_TRUE(finished);
    EXPECT_EQ(dma.stats().bytesMoved.value(), 8192u);
}

TEST_F(DmaFixture, MultipleSmallRequestsShareOneWindow)
{
    eq.runUntil(10 * kUs);
    int done_count = 0;
    for (int i = 0; i < 3; ++i) {
        DmaRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        req.bytes = 64;
        req.isWrite = false;
        req.done = [&] { ++done_count; };
        dma.enqueue(std::move(req));
    }
    auto [ws, we] = grantWindow();
    dma.runWindow(ws, we, nullptr);
    eq.runAll();
    EXPECT_EQ(done_count, 3);
    EXPECT_EQ(dma.stats().windowsUsed.value(), 1u);
}

TEST_F(DmaFixture, EmptyQueueWindowIsFree)
{
    bool window_done = false;
    dma.runWindow(eq.now(), eq.now() + kUs,
                  [&] { window_done = true; });
    EXPECT_TRUE(window_done);
    EXPECT_EQ(dma.stats().windowsUsed.value(), 0u);
}

} // namespace
} // namespace nvdimmc::nvmc
