/**
 * @file
 * Whole-system integration tests: the paper's key invariants
 * end-to-end — conflict-free tRFC serialization, coherence failure
 * injection, persistence and recovery, data integrity under load.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/power.hh"
#include "core/system.hh"
#include "workload/mixedload.hh"
#include "workload/stream.hh"

namespace nvdimmc
{
namespace
{

using core::NvdimmcSystem;
using core::SystemConfig;

std::unique_ptr<NvdimmcSystem>
makeSystem(std::function<void(SystemConfig&)> tweak = {})
{
    SystemConfig cfg = SystemConfig::scaledTest();
    if (tweak)
        tweak(cfg);
    return std::make_unique<NvdimmcSystem>(cfg);
}

void
syncWrite(NvdimmcSystem& sys, Addr off, std::uint32_t len,
          const std::uint8_t* data)
{
    bool done = false;
    sys.driver().write(off, len, data, [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    ASSERT_TRUE(done);
}

void
syncRead(NvdimmcSystem& sys, Addr off, std::uint32_t len,
         std::uint8_t* buf)
{
    bool done = false;
    sys.driver().read(off, len, buf, [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    ASSERT_TRUE(done);
}

workload::DataDevice
dataDevice(NvdimmcSystem& sys)
{
    workload::DataDevice dev;
    dev.capacityBytes = sys.driver().capacityBytes();
    dev.read = [&sys](Addr off, std::uint32_t len, std::uint8_t* buf,
                      std::function<void()> done) {
        sys.driver().read(off, len, buf, std::move(done));
    };
    dev.write = [&sys](Addr off, std::uint32_t len,
                       const std::uint8_t* data,
                       std::function<void()> done) {
        sys.driver().write(off, len, data, std::move(done));
    };
    return dev;
}

TEST(Integration, RandomOpsMatchReferenceModel)
{
    auto sys = makeSystem();
    Rng rng(2024);
    std::map<std::uint64_t, std::uint8_t> model;
    const std::uint64_t pages = 64;

    std::vector<std::uint8_t> buf(4096);
    for (int op = 0; op < 120; ++op) {
        std::uint64_t page = rng.below(pages);
        if (rng.chance(0.5)) {
            auto fill = static_cast<std::uint8_t>(rng.next() | 1);
            std::fill(buf.begin(), buf.end(), fill);
            syncWrite(*sys, page * 4096, 4096, buf.data());
            model[page] = fill;
        } else {
            std::fill(buf.begin(), buf.end(), 0xEE);
            syncRead(*sys, page * 4096, 4096, buf.data());
            auto it = model.find(page);
            std::uint8_t expect = it == model.end() ? 0 : it->second;
            ASSERT_EQ(buf[0], expect) << "page " << page;
            ASSERT_EQ(buf[2048], expect);
            ASSERT_EQ(buf[4095], expect);
        }
    }
    EXPECT_TRUE(sys->hardwareClean())
        << "tRFC serialization must be collision-free";
}

TEST(Integration, EvictionPressureKeepsIntegrity)
{
    // Working set bigger than the cache: continuous wb+cf churn.
    auto sys = makeSystem();
    std::uint32_t slots = sys->layout().slotCount();
    std::uint64_t pages = slots + 64;
    std::vector<std::uint8_t> buf(4096);

    // One full sweep (overflows the cache by 64 pages), then rewrite
    // the first 128 pages, which were evicted meanwhile.
    for (std::uint64_t p = 0; p < pages; ++p) {
        std::fill(buf.begin(), buf.end(),
                  static_cast<std::uint8_t>(p * 3 + 1));
        syncWrite(*sys, p * 4096, 4096, buf.data());
    }
    for (std::uint64_t p = 0; p < 128; ++p) {
        std::fill(buf.begin(), buf.end(),
                  static_cast<std::uint8_t>(p * 5 + 2));
        syncWrite(*sys, p * 4096, 4096, buf.data());
    }
    // Verify both regions against the model.
    for (std::uint64_t p = 0; p < 128; p += 9) {
        syncRead(*sys, p * 4096, 4096, buf.data());
        EXPECT_EQ(buf[0], static_cast<std::uint8_t>(p * 5 + 2))
            << "rewritten page " << p;
        EXPECT_EQ(buf[4095], static_cast<std::uint8_t>(p * 5 + 2));
    }
    for (std::uint64_t p = 256; p < pages; p += 97) {
        syncRead(*sys, p * 4096, 4096, buf.data());
        EXPECT_EQ(buf[0], static_cast<std::uint8_t>(p * 3 + 1))
            << "first-sweep page " << p;
    }
    EXPECT_GE(sys->driver().stats().writebacks.value() +
                  sys->driver().stats().mergedCommands.value(),
              64u);
    EXPECT_TRUE(sys->hardwareClean());
}

TEST(Integration, NvmcNeverDrivesOutsideWindows)
{
    auto sys = makeSystem();
    sys->driver().markEverWritten(0, 64);
    std::vector<std::uint8_t> buf(4096, 1);
    for (std::uint64_t p = 0; p < 32; ++p)
        syncWrite(*sys, p * 4096, 4096, buf.data());
    // Plenty of NVMC traffic happened:
    EXPECT_GT(sys->nvmc()->controller().stats().transfers.value(), 32u);
    // ... yet zero collisions and zero protocol violations.
    EXPECT_EQ(sys->bus().conflictCount(), 0u);
    EXPECT_EQ(sys->dramDevice().stats().violations.value(), 0u);
}

TEST(Integration, DisablingTheGateCausesViolations)
{
    // Failure injection: the NVMC starts driving at detection time,
    // during the DRAM's real refresh.
    auto sys = makeSystem([](SystemConfig& c) {
        c.nvmc.gateDisabled = true;
    });
    std::vector<std::uint8_t> buf(4096, 1);
    syncWrite(*sys, 0, 4096, buf.data());
    sys->eq().runFor(100 * kUs);
    EXPECT_GT(sys->dramDevice().stats().violations.value(), 0u)
        << "driving during the device's real tRFC must be caught";
}

TEST(Integration, ForcedWindowCollidesWithHost)
{
    auto sys = makeSystem();
    // Keep the host busy streaming.
    bool stop = false;
    std::function<void()> hammer = [&] {
        if (stop)
            return;
        sys->imc().readLine(0, nullptr, hammer);
    };
    hammer();
    sys->eq().runFor(10 * kUs);
    // Queue NVMC work, then force a window outside any refresh.
    auto fresh_buf = std::make_shared<std::vector<std::uint8_t>>(4096);
    nvmc::DmaRequest req;
    req.addr = sys->layout().slotAddr(0);
    req.bytes = 4096;
    req.isWrite = true;
    req.buffer = fresh_buf;
    sys->nvmc()->dma().enqueue(std::move(req));
    sys->nvmc()->forceWindowNow(2 * kUs);
    sys->eq().runFor(10 * kUs);
    stop = true;
    sys->eq().runFor(5 * kUs);
    EXPECT_GT(sys->bus().conflictCount() +
                  sys->dramDevice().stats().violations.value(),
              0u);
}

TEST(Integration, FalsePositiveDetectorIsDangerous)
{
    // Paper §VII-A: a detector that fires on non-REF commands makes
    // the NVMC collide with the host. Inject a high false rate and
    // drive host traffic.
    auto sys = makeSystem([](SystemConfig& c) {
        c.nvmc.detector.falseRate = 0.2;
    });
    // NVMC needs queued work for a window to matter: fault a page.
    std::vector<std::uint8_t> buf(4096, 1);
    bool done = false;
    sys->driver().write(0, 4096, buf.data(), [&] { done = true; });
    // Meanwhile hammer the host side so CA traffic exists for false
    // fires, and collisions have a target.
    int remaining = 20000;
    std::function<void()> hammer = [&] {
        if (--remaining <= 0)
            return;
        sys->imc().readLine((static_cast<Addr>(remaining) * 64) %
                                (1 * kMiB),
                            nullptr, hammer);
    };
    hammer();
    sys->eq().runFor(5 * kMs);
    EXPECT_GT(sys->bus().conflictCount() +
                  sys->dramDevice().stats().violations.value(),
              0u);
    (void)done;
}

TEST(Integration, CoherenceSkipFlushPersistsStaleData)
{
    // The victim slot has CPU-cached dirty lines; without the
    // clflush-before-writeback discipline the FPGA persists stale
    // bytes (paper §V-B).
    auto run = [](bool flush_discipline) {
        auto sys = makeSystem([&](SystemConfig& c) {
            c.driver.flushBeforeWriteback = flush_discipline;
        });
        // Fill page 0 with 0x11 via the normal path.
        std::vector<std::uint8_t> buf(4096, 0x11);
        syncWrite(*sys, 0, 4096, buf.data());
        // Dirty its first line in the CPU cache only (cached store,
        // never flushed by the app).
        auto slot = sys->driver().cache().peek(0);
        EXPECT_TRUE(slot.has_value());
        Addr line = sys->layout().slotAddr(*slot);
        std::vector<std::uint8_t> newline(64, 0x22);
        sys->cpuCache().store(line, newline.data(), nullptr);
        sys->eq().runFor(1 * kUs);
        // Evict page 0 by filling the rest of the cache + one more.
        std::uint32_t slots = sys->layout().slotCount();
        sys->precondition(1, slots - 1, true);
        std::vector<std::uint8_t> other(4096, 0x33);
        bool done = false;
        sys->driver().write(static_cast<Addr>(slots) * 4096, 4096,
                            other.data(), [&] { done = true; });
        while (!done && sys->eq().runOne()) {
        }
        // What did the NAND get for page 0?
        std::vector<std::uint8_t> nand(4096, 0);
        bool rdone = false;
        sys->backend().readPage(0, nand.data(), [&] { rdone = true; });
        while (!rdone && sys->eq().runOne()) {
        }
        return nand[0];
    };

    EXPECT_EQ(run(true), 0x22)
        << "with the discipline, the fresh CPU byte is persisted";
    EXPECT_EQ(run(false), 0x11)
        << "without clflush, the FPGA read the stale DRAM byte";
}

TEST(Integration, CoherenceSkipInvalidateServesStaleReads)
{
    auto run = [](bool invalidate_discipline) {
        auto sys = makeSystem([&](SystemConfig& c) {
            c.driver.invalidateAfterFill = invalidate_discipline;
            c.driver.trackDirty = true;
        });
        // Write page 0 := 0x44, evict it, pull it back in, and read.
        std::vector<std::uint8_t> buf(4096, 0x44);
        syncWrite(*sys, 0, 4096, buf.data());
        // Warm the CPU cache with the slot's current contents... by
        // reading through the cache.
        std::vector<std::uint8_t> r(4096);
        syncRead(*sys, 0, 4096, r.data());
        EXPECT_EQ(r[0], 0x44);

        // Evict page 0 (fill cache, touch one more page).
        std::uint32_t slots = sys->layout().slotCount();
        sys->precondition(1, slots - 1, false);
        std::vector<std::uint8_t> other(4096, 0x55);
        syncWrite(*sys, static_cast<Addr>(slots) * 4096, 4096,
                  other.data());
        // Page 0 must re-fill into the SAME slot it used before (the
        // only one that cycles); its old bytes are still in the CPU
        // cache.
        syncRead(*sys, 0, 4096, r.data());
        return r[0];
    };

    // With the discipline the data is correct either way; the stale
    // case manifests when the slot is reused for a DIFFERENT page.
    EXPECT_EQ(run(true), 0x44);
    EXPECT_EQ(run(false), 0x44);
}

TEST(Integration, StaleSlotReuseHazard)
{
    // Page A is cached & CPU-cached; page A is evicted; page B (whose
    // bytes already live in the NAND) fills the same slot via the
    // FPGA, *behind the CPU cache's back*. Reading B without the
    // invalidate-after-fill discipline returns A's bytes. Note that
    // NT stores are coherent, so only the FPGA's fill creates the
    // hazard — the trigger must be a first-touch READ of B.
    auto run = [](bool discipline) {
        auto sys = makeSystem([&](SystemConfig& c) {
            c.driver.invalidateAfterFill = discipline;
            c.driver.flushBeforeWriteback = discipline;
            c.driver.trackDirty = true;
        });
        // Seed page B's bytes directly in the NVM backend.
        std::uint64_t page_b = 1800;
        std::vector<std::uint8_t> b(4096, 0xB2);
        bool seeded = false;
        sys->backend().writePage(page_b, b.data(),
                                 [&] { seeded = true; });
        while (!seeded && sys->eq().runOne()) {
        }

        sys->driver().markEverWritten(page_b, 1);
        std::vector<std::uint8_t> a(4096, 0xA1);
        syncWrite(*sys, 0, 4096, a.data());
        std::vector<std::uint8_t> r(4096);
        syncRead(*sys, 0, 4096, r.data()); // CPU cache now holds A.
        EXPECT_EQ(r[0], 0xA1);

        std::uint32_t slots = sys->layout().slotCount();
        sys->precondition(1, slots - 1, false);

        // First-touch read of B: evicts page 0's slot (the LRC head)
        // and the FPGA fills B's bytes into it.
        syncRead(*sys, page_b * 4096, 4096, r.data());
        auto slot_b = sys->driver().cache().peek(page_b);
        EXPECT_TRUE(slot_b.has_value());
        EXPECT_EQ(*slot_b, 0u) << "must reuse page A's slot";
        return r[0];
    };

    EXPECT_EQ(run(true), 0xB2);
    EXPECT_EQ(run(false), 0xA1)
        << "without invalidation the CPU serves the old page's bytes";
}

TEST(Integration, PowerFailureRecoversDirtyPages)
{
    auto sys = makeSystem();
    std::vector<std::uint8_t> buf(4096, 0x77);
    syncWrite(*sys, 5 * 4096, 4096, buf.data());
    // Let metadata stores drain into the DRAM array.
    sys->eq().runFor(100 * kUs);

    auto report = core::simulatePowerFailure(
        *sys, core::PowerFailureScenario{});
    EXPECT_GE(report.pagesDumped, 1u);

    // Recovery: the NAND must hold the page.
    std::vector<std::uint8_t> r(4096, 0);
    bool done = false;
    sys->backend().readPage(5, r.data(), [&] { done = true; });
    while (!done && sys->eq().runOne()) {
    }
    EXPECT_EQ(r[0], 0x77);
    EXPECT_EQ(r[4095], 0x77);
}

TEST(Integration, WpqIsAWeakPersistenceDomain)
{
    // Paper §V-C: stores still in the WPQ when the dump races ahead
    // are lost even though ADR saved them to DRAM afterwards.
    auto run = [](bool race) {
        auto sys = makeSystem();
        std::vector<std::uint8_t> buf(4096, 0x10);
        syncWrite(*sys, 0, 4096, buf.data());
        sys->eq().runFor(100 * kUs);

        // Update one line; it reaches the WPQ but not the array.
        auto slot = sys->driver().cache().peek(0);
        EXPECT_TRUE(slot.has_value());
        std::vector<std::uint8_t> line(64, 0x20);
        sys->cpuCache().storeNt(sys->layout().slotAddr(*slot),
                                line.data(), nullptr);
        // Fail *now*, without letting the WPQ drain.
        core::PowerFailureScenario sc;
        sc.adrWorks = true;
        sc.raceWindow = race;
        core::simulatePowerFailure(*sys, sc);

        std::vector<std::uint8_t> r(4096, 0);
        bool done = false;
        sys->backend().readPage(0, r.data(), [&] { done = true; });
        while (!done && sys->eq().runOne()) {
        }
        return r[0];
    };

    EXPECT_EQ(run(false), 0x20) << "ADR before dump: store survives";
    EXPECT_EQ(run(true), 0x10) << "dump raced ahead: store lost";
}

TEST(Integration, PowerFailureWithoutAdrLosesWpq)
{
    auto sys = makeSystem();
    std::vector<std::uint8_t> buf(4096, 0x31);
    syncWrite(*sys, 0, 4096, buf.data());
    sys->eq().runFor(100 * kUs);
    auto slot = sys->driver().cache().peek(0);
    ASSERT_TRUE(slot.has_value());
    std::vector<std::uint8_t> line(64, 0x42);
    sys->cpuCache().storeNt(sys->layout().slotAddr(*slot), line.data(),
                            nullptr);
    core::PowerFailureScenario sc;
    sc.adrWorks = false;
    auto report = core::simulatePowerFailure(*sys, sc);
    EXPECT_GE(report.wpqLost, 1u);
}

TEST(Integration, MixedLoadValidatesWithoutCorruption)
{
    auto sys = makeSystem();
    workload::MixedLoadConfig cfg;
    cfg.users = 16;
    cfg.transactionsPerUser = 6;
    cfg.recordBytes = 4096;
    cfg.regionBytes = 2 * kMiB;
    auto res = workload::runMixedLoad(sys->eq(), dataDevice(*sys), cfg);
    EXPECT_EQ(res.transactions, 16u * 6u);
    EXPECT_EQ(res.validationFailures, 0u);
    EXPECT_TRUE(sys->hardwareClean());
    // Pooled-allocation audit: no simulator hot-path callable may
    // spill EventQueue's small-buffer inline storage — a spill is a
    // heap round-trip per event. If this fires, shrink the offending
    // lambda's captures (see sboOverflows() in event_queue.hh).
    EXPECT_EQ(sys->eq().sboOverflows(), 0u);
}

TEST(Integration, StreamAgingTestIsClean)
{
    // Paper §VII-A: STREAM with per-iteration validation while the
    // NVMC exploits every refresh window.
    auto sys = makeSystem();
    workload::StreamConfig cfg;
    cfg.elements = 8192; // 64 KB per array.
    cfg.iterations = 2;
    auto res = workload::runStream(sys->eq(), dataDevice(*sys), cfg);
    EXPECT_EQ(res.elementMismatches, 0u);
    EXPECT_EQ(res.kernelsRun, 8u);
    EXPECT_TRUE(sys->hardwareClean());
    EXPECT_GT(sys->nvmc()->windowsGranted(), 0u);
}

TEST(Integration, BaselineSystemServesReadsAndWrites)
{
    core::BaselineConfig cfg = core::BaselineConfig::scaledBench();
    cfg.capacityBytes = 64 * kMiB;
    cfg.storeData = true;
    cfg.memcpy.bulkMode = false;
    core::BaselineSystem sys(cfg);

    std::vector<std::uint8_t> w(4096, 0x66), r(4096, 0);
    bool done = false;
    sys.driver().write(0x3000, 4096, w.data(), [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    ASSERT_TRUE(done);
    sys.eq().runFor(100 * kUs); // Drain the WPQ.
    done = false;
    sys.driver().read(0x3000, 4096, r.data(), [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    ASSERT_TRUE(done);
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);
}

TEST(Integration, CachedLatencyFarBelowUncached)
{
    auto sys = makeSystem();
    sys->driver().markEverWritten(0, 1);
    std::vector<std::uint8_t> buf(4096, 1);
    Tick t0 = sys->eq().now();
    syncWrite(*sys, 0, 4096, buf.data()); // Miss.
    Tick miss_lat = sys->eq().now() - t0;
    t0 = sys->eq().now();
    syncWrite(*sys, 0, 4096, buf.data()); // Hit.
    Tick hit_lat = sys->eq().now() - t0;
    EXPECT_GT(miss_lat, 5 * hit_lat)
        << "the cached/uncached gap is the paper's core result";
}

} // namespace
} // namespace nvdimmc
