/**
 * @file
 * Driver-layer tests: replacement policies, DRAM cache directory,
 * page table, and nvdc driver behaviour on a full system.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include <cstring>
#include <vector>

#include "core/system.hh"
#include "driver/dram_cache.hh"
#include "driver/page_table.hh"
#include "driver/replacement_policy.hh"

namespace nvdimmc::driver
{
namespace
{

// --- Replacement policies ---

TEST(LrcPolicyTest, EvictsInInstallOrderIgnoringAccesses)
{
    LrcPolicy p;
    p.reset(8);
    p.onInstall(3);
    p.onInstall(1);
    p.onInstall(5);
    p.onAccess(3); // LRC ignores accesses (paper §IV-B).
    p.onAccess(3);
    EXPECT_EQ(p.pickVictim(), 3u);
    p.onEvict(3);
    EXPECT_EQ(p.pickVictim(), 1u);
    p.onEvict(1);
    EXPECT_EQ(p.pickVictim(), 5u);
}

TEST(LruPolicyTest, AccessesRefreshRecency)
{
    LruPolicy p;
    p.reset(8);
    p.onInstall(0);
    p.onInstall(1);
    p.onInstall(2);
    p.onAccess(0); // 0 becomes MRU; victim should be 1.
    EXPECT_EQ(p.pickVictim(), 1u);
    p.onEvict(1);
    EXPECT_EQ(p.pickVictim(), 2u);
    p.onEvict(2);
    EXPECT_EQ(p.pickVictim(), 0u);
}

TEST(ClockPolicyTest, SecondChance)
{
    ClockPolicy p;
    p.reset(4);
    p.onInstall(0);
    p.onInstall(1);
    p.onInstall(2);
    // All have the reference bit; the first sweep clears them and the
    // second sweep evicts 0 first.
    EXPECT_EQ(p.pickVictim(), 0u);
}

TEST(RandomPolicyTest, PicksOnlyInstalledSlots)
{
    RandomPolicy p(123);
    p.reset(16);
    p.onInstall(4);
    p.onInstall(9);
    p.onInstall(12);
    p.onEvict(9);
    for (int i = 0; i < 50; ++i) {
        std::uint32_t v = p.pickVictim();
        EXPECT_TRUE(v == 4 || v == 12);
    }
}

TEST(PolicyFactoryTest, CreatesAllKnownPolicies)
{
    for (const char* name : {"lrc", "lru", "clock", "random"}) {
        auto p = ReplacementPolicy::create(name);
        ASSERT_NE(p, nullptr);
        EXPECT_STREQ(p->name(), name);
    }
    EXPECT_THROW(ReplacementPolicy::create("mru"), FatalError);
}

/** Every policy must only ever return installed slots. */
class PolicyProperty
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PolicyProperty, VictimsAreAlwaysInstalled)
{
    auto p = ReplacementPolicy::create(GetParam(), 5);
    const std::uint32_t slots = 32;
    p->reset(slots);
    Rng rng(99);
    std::vector<bool> installed(slots, false);
    std::uint32_t count = 0;
    for (int step = 0; step < 2000; ++step) {
        if (count < slots && (count == 0 || rng.chance(0.55))) {
            // Install a random free slot.
            std::uint32_t s;
            do {
                s = static_cast<std::uint32_t>(rng.below(slots));
            } while (installed[s]);
            installed[s] = true;
            ++count;
            p->onInstall(s);
        } else {
            std::uint32_t v = p->pickVictim();
            ASSERT_TRUE(installed[v])
                << GetParam() << " step " << step;
            installed[v] = false;
            --count;
            p->onEvict(v);
        }
        if (count > 0 && rng.chance(0.3)) {
            // Touch a random installed slot.
            std::uint32_t s;
            do {
                s = static_cast<std::uint32_t>(rng.below(slots));
            } while (!installed[s]);
            p->onAccess(s);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty,
                         ::testing::Values("lrc", "lru", "clock",
                                           "random"));

// --- DramCache directory ---

TEST(DramCacheTest, AllocateLookupEvictCycle)
{
    DramCache cache(4, ReplacementPolicy::create("lrc"));
    EXPECT_TRUE(cache.hasFree());
    std::uint32_t s = cache.allocate(100);
    EXPECT_FALSE(cache.lookup(100).has_value())
        << "busy slots are not hits";
    cache.finishFill(s);
    ASSERT_TRUE(cache.lookup(100).has_value());
    EXPECT_EQ(*cache.lookup(100), s);

    cache.markDirty(s);
    CacheSlot prior = cache.beginEvict(s);
    EXPECT_TRUE(prior.dirty);
    EXPECT_EQ(prior.devPage, 100u);
    EXPECT_FALSE(cache.lookup(100).has_value());
    cache.finishEvict(s);
    EXPECT_EQ(cache.usedSlots(), 0u);
}

TEST(DramCacheTest, RebindReusesSlotForNewPage)
{
    DramCache cache(2, ReplacementPolicy::create("lrc"));
    std::uint32_t s = cache.allocate(1);
    cache.finishFill(s);
    cache.beginEvict(s);
    cache.rebind(s, 2);
    cache.finishFill(s);
    EXPECT_FALSE(cache.lookup(1).has_value());
    ASSERT_TRUE(cache.lookup(2).has_value());
    EXPECT_EQ(*cache.lookup(2), s);
}

TEST(DramCacheTest, FillsToCapacityThenEvicts)
{
    DramCache cache(3, ReplacementPolicy::create("lrc"));
    for (std::uint64_t p = 0; p < 3; ++p)
        cache.finishFill(cache.allocate(p));
    EXPECT_FALSE(cache.hasFree());
    std::uint32_t v = cache.pickVictim();
    EXPECT_EQ(cache.slot(v).devPage, 0u) << "LRC evicts oldest install";
}

TEST(DramCacheTest, HitRateAccounting)
{
    DramCache cache(2, ReplacementPolicy::create("lru"));
    cache.finishFill(cache.allocate(1));
    cache.lookup(1);
    cache.lookup(2);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
}

// --- PageTable ---

TEST(PageTableTest, MapTranslateUnmap)
{
    PageTable pt;
    EXPECT_FALSE(pt.translate(7).has_value());
    pt.map(7, 3);
    ASSERT_TRUE(pt.translate(7).has_value());
    EXPECT_EQ(*pt.translate(7), 3u);
    pt.unmap(7);
    EXPECT_FALSE(pt.translate(7).has_value());
    EXPECT_EQ(pt.totalMaps(), 1u);
    EXPECT_EQ(pt.totalUnmaps(), 1u);
}

// --- NvdcDriver on a full system ---

struct DriverFixture : public ::testing::Test
{
    void
    build(std::function<void(core::SystemConfig&)> tweak = {})
    {
        auto cfg = core::SystemConfig::scaledTest();
        if (tweak)
            tweak(cfg);
        sys = std::make_unique<core::NvdimmcSystem>(cfg);
    }

    void
    write(Addr off, std::uint32_t len, const std::uint8_t* data)
    {
        bool done = false;
        sys->driver().write(off, len, data, [&] { done = true; });
        while (!done && sys->eq().runOne()) {
        }
        ASSERT_TRUE(done);
    }

    void
    read(Addr off, std::uint32_t len, std::uint8_t* buf)
    {
        bool done = false;
        sys->driver().read(off, len, buf, [&] { done = true; });
        while (!done && sys->eq().runOne()) {
        }
        ASSERT_TRUE(done);
    }

    std::unique_ptr<core::NvdimmcSystem> sys;
};

TEST_F(DriverFixture, WriteReadRoundTripThroughWholeStack)
{
    build();
    std::vector<std::uint8_t> w(4096), r(4096, 0);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = static_cast<std::uint8_t>(i * 7 + 1);
    write(0x4000, 4096, w.data());
    read(0x4000, 4096, r.data());
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);
    EXPECT_TRUE(sys->hardwareClean());
}

TEST_F(DriverFixture, FirstTouchFaultsThenHits)
{
    build();
    std::vector<std::uint8_t> buf(4096, 1);
    write(0, 4096, buf.data());
    auto faults_after_first = sys->driver().stats().pageFaults.value();
    EXPECT_GE(faults_after_first, 1u);
    write(0, 4096, buf.data());
    EXPECT_EQ(sys->driver().stats().pageFaults.value(),
              faults_after_first);
    EXPECT_GE(sys->driver().cache().stats().hits.value(), 1u);
}

TEST_F(DriverFixture, MissLatencyIsAtLeastThreeRefreshWindows)
{
    build();
    // Make the block hold data so the fill is a real NAND cachefill
    // (a never-written block takes the zero-fill fast path instead).
    sys->driver().markEverWritten(0, 1);
    std::vector<std::uint8_t> buf(4096, 1);
    Tick start = sys->eq().now();
    write(0, 4096, buf.data());
    Tick lat = sys->eq().now() - start;
    // Paper §V-A: a cachefill needs >= 3 tREFI (23.4 us).
    EXPECT_GE(lat, 3 * sys->config().refresh.tREFI);
    EXPECT_GE(sys->nvmc()->windowsGranted(), 3u);
}

TEST_F(DriverFixture, EvictionWritesBackThroughCp)
{
    build();
    auto slots = sys->layout().slotCount();
    std::vector<std::uint8_t> buf(4096, 2);
    // Fill the cache via preconditioning (dirty), then one more write
    // must evict + write back.
    sys->precondition(0, slots, true);
    sys->driver().markEverWritten(0, slots + 8);
    write(static_cast<Addr>(slots) * 4096, 4096, buf.data());
    EXPECT_GE(sys->driver().stats().writebacks.value(), 1u);
    EXPECT_GE(sys->driver().stats().cachefills.value(), 1u);
    EXPECT_GE(sys->nvmc()->firmware().stats().writebacks.value(), 1u);
}

TEST_F(DriverFixture, NeverWrittenBlockSkipsCachefill)
{
    build();
    std::vector<std::uint8_t> buf(4096, 0xEE);
    Tick start = sys->eq().now();
    read(0x9000, 4096, buf.data());
    Tick lat = sys->eq().now() - start;
    EXPECT_EQ(sys->driver().stats().cachefills.value(), 0u)
        << "zero-fill fast path must not touch the CP channel";
    EXPECT_LT(lat, sys->config().refresh.tREFI);
    EXPECT_EQ(buf[0], 0x00);
}

TEST_F(DriverFixture, DirtyTrackingSkipsCleanWritebacks)
{
    build([](core::SystemConfig& c) { c.driver.trackDirty = true; });
    auto slots = sys->layout().slotCount();
    // Precondition CLEAN pages.
    sys->precondition(0, slots, false);
    sys->driver().markEverWritten(0, slots + 8);
    std::vector<std::uint8_t> buf(4096, 3);
    write(static_cast<Addr>(slots) * 4096, 4096, buf.data());
    EXPECT_EQ(sys->driver().stats().writebacks.value(), 0u)
        << "clean victim must not be written back";
    EXPECT_GE(sys->driver().stats().cachefills.value(), 1u);
}

TEST_F(DriverFixture, MergedCommandAblation)
{
    build([](core::SystemConfig& c) { c.driver.mergedWbCf = true; });
    auto slots = sys->layout().slotCount();
    sys->precondition(0, slots, true);
    sys->driver().markEverWritten(0, slots + 8);
    std::vector<std::uint8_t> buf(4096, 4);
    write(static_cast<Addr>(slots) * 4096, 4096, buf.data());
    EXPECT_GE(sys->driver().stats().mergedCommands.value(), 1u);
    EXPECT_GE(sys->nvmc()->firmware().stats().mergedOps.value(), 1u);
    // Data written back must be recoverable: read the evicted page.
    std::vector<std::uint8_t> r(4096, 0xff);
    read(0, 4096, r.data());
    // Preconditioned pages had no data written; zeros expected, and
    // crucially no hang or hardware violation.
    EXPECT_TRUE(sys->hardwareClean());
}

TEST_F(DriverFixture, HypotheticalModeUsesNoCp)
{
    build([](core::SystemConfig& c) {
        c.driver.hypothetical = true;
        c.driver.hypotheticalTd = 1850 * kNs;
        c.nvmcEnabled = false;
        c.media = core::MediaKind::Delay;
        c.mediaBytes = 64 * kMiB;
    });
    std::vector<std::uint8_t> buf(4096, 5);
    Tick start = sys->eq().now();
    write(0, 4096, buf.data());
    Tick lat = sys->eq().now() - start;
    EXPECT_GE(lat, 3 * 1850 * kNs) << "waits 3x tD";
    EXPECT_LT(lat, 20 * kUs) << "no refresh-window serialization";
    EXPECT_EQ(sys->driver().stats().cachefills.value(), 0u);
}

TEST_F(DriverFixture, ConcurrentFaultsToSamePageFillOnce)
{
    build();
    sys->driver().markEverWritten(0, 1);
    std::vector<std::uint8_t> b1(4096, 0), b2(4096, 0);
    bool d1 = false, d2 = false;
    sys->driver().read(0, 4096, b1.data(), [&] { d1 = true; });
    sys->driver().read(0, 4096, b2.data(), [&] { d2 = true; });
    while (!(d1 && d2) && sys->eq().runOne()) {
    }
    ASSERT_TRUE(d1 && d2);
    EXPECT_EQ(sys->nvmc()->firmware().stats().cachefills.value(), 1u)
        << "second fault must piggyback on the first fill";
}

TEST_F(DriverFixture, MultiPageAccessSpansSegments)
{
    build();
    std::vector<std::uint8_t> w(3 * 4096);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = static_cast<std::uint8_t>(i / 4096 + 1);
    write(0x2000, static_cast<std::uint32_t>(w.size()), w.data());
    std::vector<std::uint8_t> r(w.size(), 0);
    read(0x2000, static_cast<std::uint32_t>(r.size()), r.data());
    EXPECT_EQ(std::memcmp(w.data(), r.data(), w.size()), 0);
}

TEST_F(DriverFixture, MetadataMatchesDriverStateForPowerDump)
{
    build();
    std::vector<std::uint8_t> buf(4096, 6);
    write(0x7000, 4096, buf.data());
    // The metadata line for the slot holding page 7 must say
    // valid+dirty with the right NAND page.
    auto slot = sys->driver().cache().peek(7);
    ASSERT_TRUE(slot.has_value());
    // Let the metadata store drain through the WPQ.
    sys->eq().runFor(50 * kUs);

    Addr maddr = sys->layout().metadataAddr(*slot);
    std::vector<std::uint8_t> line(64);
    Addr line_addr = maddr & ~Addr{63};
    for (std::uint32_t off = 0; off < 64; off += 64) {
        sys->dramDevice().readBurst(
            sys->dramDevice().addressMap().decompose(line_addr + off),
            line.data() + off);
    }
    auto meta = nvmc::decodeSlotMetadata(line.data() +
                                         (maddr - line_addr));
    EXPECT_TRUE(meta.valid);
    EXPECT_TRUE(meta.dirty);
    EXPECT_EQ(meta.nandPage, 7u);
}

TEST_F(DriverFixture, RejectsOutOfRangeAccess)
{
    build();
    std::vector<std::uint8_t> buf(4096, 0);
    EXPECT_THROW(
        sys->driver().read(sys->driver().capacityBytes(), 4096,
                           buf.data(), [] {}),
        PanicError);
}

} // namespace
} // namespace nvdimmc::driver
