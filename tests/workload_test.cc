/**
 * @file
 * Workload generator tests: FIO job mechanics, SSD rate model, TPC-H
 * specs and cache replay, file copy phases.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/event_queue.hh"
#include "driver/dram_cache.hh"
#include "workload/fio.hh"
#include "workload/filecopy.hh"
#include "workload/ssd.hh"
#include "workload/tpch.hh"

namespace nvdimmc::workload
{
namespace
{

/** Instant-completion device that records the requests it saw. */
struct RecordingDevice
{
    struct Op
    {
        Addr offset;
        std::uint32_t len;
        bool isWrite;
    };

    EventQueue& eq;
    Tick serviceTime;
    std::vector<Op> ops;

    AccessFn
    fn()
    {
        return [this](Addr off, std::uint32_t len, bool wr,
                      std::function<void()> done) {
            ops.push_back({off, len, wr});
            eq.scheduleAfter(serviceTime, std::move(done));
        };
    }
};

TEST(FioJobTest, RandReadStaysInRegionAndAligned)
{
    EventQueue eq;
    RecordingDevice dev{eq, 1 * kUs, {}};
    FioConfig cfg;
    cfg.pattern = FioConfig::Pattern::RandRead;
    cfg.blockSize = 4096;
    cfg.regionOffset = 1 * kMiB;
    cfg.regionBytes = 4 * kMiB;
    cfg.rampTime = 100 * kUs;
    cfg.runTime = 1 * kMs;
    FioJob job(eq, dev.fn(), cfg);
    FioResult res = job.run();

    EXPECT_GT(res.ops, 500u);
    for (const auto& op : dev.ops) {
        EXPECT_GE(op.offset, cfg.regionOffset);
        EXPECT_LT(op.offset, cfg.regionOffset + cfg.regionBytes);
        EXPECT_EQ(op.offset % 4096, 0u);
        EXPECT_FALSE(op.isWrite);
    }
}

TEST(FioJobTest, ThroughputMatchesServiceTime)
{
    EventQueue eq;
    RecordingDevice dev{eq, 2 * kUs, {}};
    FioConfig cfg;
    cfg.pattern = FioConfig::Pattern::RandWrite;
    cfg.blockSize = 4096;
    cfg.regionBytes = 16 * kMiB;
    cfg.rampTime = 50 * kUs;
    cfg.runTime = 2 * kMs;
    FioJob job(eq, dev.fn(), cfg);
    FioResult res = job.run();
    // 1 thread, 2 us/op => ~500 kiops/1000 = 500 IOPS/ms => 500 KIOPS?
    // 2 us per op = 500 ops/ms = 500 KIOPS * 1e-3... compute directly:
    EXPECT_NEAR(res.kiops, 500.0, 25.0);
    EXPECT_NEAR(res.mbps, 500.0 * 4096.0 / 1000.0, 100.0);
    EXPECT_NEAR(ticksToUs(res.meanLatency), 2.0, 0.3);
}

TEST(FioJobTest, ThreadsScaleClosedLoop)
{
    EventQueue eq;
    RecordingDevice dev{eq, 2 * kUs, {}};
    FioConfig cfg;
    cfg.pattern = FioConfig::Pattern::RandRead;
    cfg.blockSize = 4096;
    cfg.regionBytes = 16 * kMiB;
    cfg.rampTime = 50 * kUs;
    cfg.runTime = 1 * kMs;
    cfg.threads = 4;
    FioJob job(eq, dev.fn(), cfg);
    FioResult res = job.run();
    EXPECT_NEAR(res.kiops, 2000.0, 150.0)
        << "independent service means linear scaling";
}

TEST(FioJobTest, SequentialPatternAdvancesAndWraps)
{
    EventQueue eq;
    RecordingDevice dev{eq, 1 * kUs, {}};
    FioConfig cfg;
    cfg.pattern = FioConfig::Pattern::SeqRead;
    cfg.blockSize = 4096;
    cfg.regionBytes = 64 * 4096;
    cfg.rampTime = 0;
    cfg.runTime = 200 * kUs;
    FioJob job(eq, dev.fn(), cfg);
    job.run();
    ASSERT_GT(dev.ops.size(), 70u) << "must wrap the region";
    for (std::size_t i = 1; i < 64 && i < dev.ops.size(); ++i) {
        EXPECT_EQ(dev.ops[i].offset,
                  dev.ops[i - 1].offset + 4096);
    }
    // Wrap-around back to 0.
    EXPECT_EQ(dev.ops[64].offset, 0u);
}

TEST(SsdTest, SequentialReadRateIsHonoured)
{
    EventQueue eq;
    Ssd ssd(eq, Ssd::Params{});
    // 52 MB at 520 MB/s = 100 ms.
    bool done = false;
    Tick finish = 0;
    ssd.read(52 * 1000 * 1000, [&] {
        done = true;
        finish = eq.now();
    });
    eq.runAll();
    ASSERT_TRUE(done);
    EXPECT_NEAR(ticksToSec(finish), 0.1, 0.005);
}

TEST(SsdTest, RequestsSerialize)
{
    EventQueue eq;
    Ssd ssd(eq, Ssd::Params{});
    Tick t1 = 0, t2 = 0;
    ssd.read(1000000, [&] { t1 = eq.now(); });
    ssd.read(1000000, [&] { t2 = eq.now(); });
    eq.runAll();
    EXPECT_GE(t2, 2 * t1 - 100 * kNs);
}

TEST(TpchSpecTest, AllTwentyTwoQueriesPresentAndSane)
{
    const auto& specs = tpchQuerySpecs();
    ASSERT_EQ(specs.size(), 22u);
    std::set<int> ids;
    for (const auto& q : specs) {
        ids.insert(q.id);
        EXPECT_GT(q.footprintFraction, 0.0);
        EXPECT_LE(q.footprintFraction, 1.0);
        EXPECT_GE(q.seqFraction, 0.0);
        EXPECT_LE(q.seqFraction, 1.0);
        EXPECT_GE(q.accessBytes, 4096u);
        EXPECT_GT(q.passes, 0.0);
    }
    EXPECT_EQ(ids.size(), 22u);
    // The paper's two anchors.
    EXPECT_DOUBLE_EQ(specs[0].seqFraction, 1.0) << "Q1 is a scan";
    EXPECT_LT(specs[19].seqFraction, 0.1) << "Q20 is random";
    EXPECT_EQ(specs[19].accessBytes, 4096u);
}

TEST(TpchReplayTest, LruBeatsLrcOnHotJoinQuery)
{
    // Paper §VII-B5 reports LRU hit rates of 78.7-99.3% for caches
    // of 1-16% of the database. We assert (a) LRU is at least as good
    // as the PoC's LRC up to sampling noise, and (b) LRU at a ~3%
    // cache fraction already clears the paper's 1 GB operating point
    // on a locality-bearing query (Q9, the big join).
    const auto& q9 = tpchQuerySpecs()[8];
    const std::uint64_t db_pages = 65536;
    const std::uint32_t slots = 2048;

    driver::DramCache lrc(slots,
                          driver::ReplacementPolicy::create("lrc"));
    driver::DramCache lru(slots,
                          driver::ReplacementPolicy::create("lru"));
    double hr_lrc = replayTpchOnCache(lrc, q9, db_pages, 120000, 3);
    double hr_lru = replayTpchOnCache(lru, q9, db_pages, 120000, 3);
    // Both policies must exploit the join's hot set; the paper's
    // LRU-beats-LRC margin depends on HANA-internal reuse patterns
    // our storage-level trace cannot carry (see EXPERIMENTS.md), so
    // we only require rough parity here. The strict LRU > LRC
    // property is asserted below on a recency-structured workload.
    EXPECT_GE(hr_lru, hr_lrc - 0.10);
    EXPECT_GE(hr_lru, 0.45);
    EXPECT_GE(hr_lrc, 0.45);
}

TEST(TpchReplayTest, LruBeatsLrcOnRecencyWorkload)
{
    // A workload with genuine recency (re-reference one of the last
    // K touched pages) is where LRU must beat least-recently-cached:
    // LRC evicts by install order even if the page was touched a
    // moment ago.
    auto run = [](const char* policy) {
        const std::uint32_t slots = 512;
        const std::uint64_t pages = 8192;
        driver::DramCache cache(
            slots, driver::ReplacementPolicy::create(policy));
        Rng rng(31);
        std::vector<std::uint64_t> recent;
        for (int i = 0; i < 200000; ++i) {
            std::uint64_t page;
            if (!recent.empty() && rng.chance(0.6)) {
                page = recent[recent.size() - 1 -
                              rng.below(std::min<std::size_t>(
                                  recent.size(), 256))];
            } else {
                page = rng.below(pages);
            }
            recent.push_back(page);
            if (recent.size() > 256)
                recent.erase(recent.begin());
            if (cache.lookup(page))
                continue;
            std::uint32_t slot;
            if (cache.hasFree()) {
                slot = cache.allocate(page);
            } else {
                std::uint32_t victim = cache.pickVictim();
                cache.beginEvict(victim);
                cache.rebind(victim, page);
                slot = victim;
            }
            cache.finishFill(slot);
        }
        return cache.stats().hitRate();
    };
    double lru = run("lru");
    double lrc = run("lrc");
    EXPECT_GT(lru, lrc + 0.005)
        << "LRU must beat FIFO when references are recency-driven";
}

TEST(TpchReplayTest, HitRateGrowsWithCacheSize)
{
    const auto& q9 = tpchQuerySpecs()[8];
    const std::uint64_t db_pages = 8192;
    double prev = -1.0;
    for (std::uint32_t slots : {256u, 1024u, 4096u}) {
        driver::DramCache cache(
            slots, driver::ReplacementPolicy::create("lru"));
        double hr = replayTpchOnCache(cache, q9, db_pages, 60000, 5);
        EXPECT_GT(hr, prev);
        prev = hr;
    }
    EXPECT_GT(prev, 0.4);
}

TEST(TpchRunTest, ComputeModelSetsScanOverRandomRatio)
{
    // Against a fixed-latency device, wall time per access is
    // service + compute; Q1's big compute-heavy accesses vs Q20's
    // small cheap ones must land near the analytic ratio.
    EventQueue eq;
    const Tick service = 20 * kUs;
    auto device = [&eq, service](Addr, std::uint32_t, bool,
                                 std::function<void()> done) {
        eq.scheduleAfter(service, std::move(done));
    };
    TpchRunConfig cfg;
    cfg.dbBytes = 256 * kMiB;
    cfg.maxAccesses = 1000; // Both queries cap here -> equal op count.
    const auto& q1 = tpchQuerySpecs()[0];
    const auto& q20 = tpchQuerySpecs()[19];
    Tick t1 = runTpchQuery(eq, device, q1, cfg);
    Tick t20 = runTpchQuery(eq, device, q20, cfg);
    double per1 = ticksToUs(service) +
                  q1.computeNsPerByte * q1.accessBytes / 1000.0;
    double per20 = ticksToUs(service) +
                   q20.computeNsPerByte * q20.accessBytes / 1000.0;
    EXPECT_NEAR(static_cast<double>(t1) / static_cast<double>(t20),
                per1 / per20, 0.3 * per1 / per20);
}

TEST(FileCopyTest, PhasesSplitAroundCacheCapacity)
{
    EventQueue eq;
    Ssd ssd(eq, Ssd::Params{});

    // Device: fast while total written < "cache", then 10x slower.
    std::uint64_t written = 0;
    const std::uint64_t cache_bytes = 32 * kMiB;
    auto device = [&](Addr, std::uint32_t len, bool,
                      std::function<void()> done) {
        Tick cost = written < cache_bytes ? 100 * kNs : 50 * kUs;
        written += len;
        eq.scheduleAfter(cost * (len / 4096), std::move(done));
    };

    FileCopyConfig cfg;
    cfg.fileBytes = 64 * kMiB;
    cfg.chunkBytes = 256 * 1024;
    cfg.sampleInterval = 10 * kMs;
    cfg.cacheBytes = cache_bytes;
    FileCopyResult res = runFileCopy(eq, ssd, device, cfg);

    EXPECT_GT(res.cachedPhaseMBps, res.uncachedPhaseMBps * 2);
    EXPECT_GT(res.bandwidth.points().size(), 2u);
    EXPECT_GT(res.elapsed, 0u);
}

} // namespace
} // namespace nvdimmc::workload
