/**
 * @file
 * NVM media tests: Z-NAND geometry/timing/discipline, simple media
 * presets, and the programmable-delay media.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/event_queue.hh"
#include "nvm/delay_media.hh"
#include "nvm/nvm_media.hh"
#include "nvm/pram.hh"
#include "nvm/sttmram.hh"
#include "nvm/znand.hh"

namespace nvdimmc::nvm
{
namespace
{

TEST(ZNandParams, PocGeometryIs128GiB)
{
    auto p = ZNandParams::poc128GB();
    EXPECT_EQ(p.capacityBytes(), 128 * kGiB);
    EXPECT_EQ(p.channels, 2u);
}

TEST(ZNandParams, TinyGeometryIsSmall)
{
    auto p = ZNandParams::tiny();
    EXPECT_LE(p.capacityBytes(), 64 * kMiB);
    EXPECT_GE(p.totalBlocks(), 16u);
}

struct ZNandFixture : public ::testing::Test
{
    ZNandFixture() : nand(eq, ZNandParams::tiny()) {}

    EventQueue eq;
    ZNand nand;
};

TEST_F(ZNandFixture, FlatPageRoundTrip)
{
    const auto& p = nand.params();
    for (std::uint64_t page : {std::uint64_t{0}, std::uint64_t{1},
                               p.totalPages() / 2,
                               p.totalPages() - 1}) {
        NandAddr a = nand.fromFlatPage(page);
        EXPECT_EQ(nand.flatPage(a), page);
        EXPECT_LT(a.channel, p.channels);
        EXPECT_LT(a.die, p.diesPerChannel);
        EXPECT_LT(a.plane, p.planesPerDie);
        EXPECT_LT(a.block, p.blocksPerPlane);
        EXPECT_LT(a.page, p.pagesPerBlock);
    }
}

TEST_F(ZNandFixture, ProgramThenReadReturnsData)
{
    std::vector<std::uint8_t> w(4096, 0xc3), r(4096, 0);
    bool pdone = false, rdone = false;
    nand.programPage(0, w.data(), [&] { pdone = true; });
    eq.runAll();
    ASSERT_TRUE(pdone);
    nand.readPage(0, r.data(), [&] { rdone = true; });
    eq.runAll();
    ASSERT_TRUE(rdone);
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);
}

TEST_F(ZNandFixture, ErasedPageReadsAllOnes)
{
    std::vector<std::uint8_t> r(4096, 0);
    nand.readPage(5, r.data(), [] {});
    eq.runAll();
    EXPECT_EQ(r[0], 0xff);
    EXPECT_EQ(r[4095], 0xff);
}

TEST_F(ZNandFixture, ReadLatencyIncludesArrayAndTransfer)
{
    bool done = false;
    Tick finish = 0;
    nand.readPage(0, nullptr, [&] {
        done = true;
        finish = eq.now();
    });
    eq.runAll();
    ASSERT_TRUE(done);
    const auto& p = nand.params();
    // tR plus ~20.5 us of transfer at 200 MB/s.
    Tick xfer = static_cast<Tick>(p.pageBytes / (p.channelMBps * 1e6) *
                                  1e12);
    EXPECT_GE(finish, p.tR + xfer);
    EXPECT_LE(finish, p.tR + xfer + kUs);
}

TEST_F(ZNandFixture, ProgramOccupiesDieForTprog)
{
    bool done = false;
    Tick finish = 0;
    nand.programPage(0, nullptr, [&] {
        done = true;
        finish = eq.now();
    });
    eq.runAll();
    ASSERT_TRUE(done);
    EXPECT_GE(finish, nand.params().tPROG);
}

TEST_F(ZNandFixture, DieSerializationAndChannelParallelism)
{
    const auto& p = nand.params();
    // Two reads to the same die serialize; reads to different
    // channels overlap.
    std::uint64_t same_die_a = 0;
    std::uint64_t same_die_b = 1;
    std::uint64_t other_channel =
        nand.flatPage({1, 0, 0, 0, 0});

    Tick t_a = 0, t_b = 0, t_c = 0;
    nand.readPage(same_die_a, nullptr, [&] { t_a = eq.now(); });
    nand.readPage(same_die_b, nullptr, [&] { t_b = eq.now(); });
    nand.readPage(other_channel, nullptr, [&] { t_c = eq.now(); });
    eq.runAll();
    EXPECT_GE(t_b, t_a + p.tR) << "same-die reads serialize on tR";
    EXPECT_LT(t_c, t_b) << "other-channel read overlaps";
}

TEST_F(ZNandFixture, ProgramTwiceWithoutEraseIsViolation)
{
    nand.programPage(0, nullptr, [] {});
    eq.runAll();
    nand.programPage(0, nullptr, [] {});
    eq.runAll();
    EXPECT_EQ(nand.stats().disciplineViolations.value(), 1u);
}

TEST_F(ZNandFixture, OutOfOrderProgramIsViolation)
{
    nand.programPage(3, nullptr, [] {}); // Page 3 before 0.
    eq.runAll();
    EXPECT_EQ(nand.stats().disciplineViolations.value(), 1u);
}

TEST_F(ZNandFixture, EraseResetsBlockAndCountsWear)
{
    const auto& p = nand.params();
    for (std::uint32_t i = 0; i < p.pagesPerBlock; ++i) {
        nand.programPage(i, nullptr, [] {});
        eq.runAll();
    }
    EXPECT_TRUE(nand.pageProgrammed(0));
    nand.eraseBlock(0, [] {});
    eq.runAll();
    EXPECT_FALSE(nand.pageProgrammed(0));
    EXPECT_EQ(nand.eraseCount(0), 1u);
    EXPECT_EQ(nand.maxEraseCount(), 1u);
    // Reprogramming page 0 is now legal.
    nand.programPage(0, nullptr, [] {});
    eq.runAll();
    EXPECT_EQ(nand.stats().disciplineViolations.value(), 0u);
}

TEST_F(ZNandFixture, BadBlockMarking)
{
    EXPECT_FALSE(nand.isBadBlock(3));
    nand.markBadBlock(3);
    EXPECT_TRUE(nand.isBadBlock(3));
}

TEST(SimpleMediaTest, LatencyAndBandwidthModel)
{
    EventQueue eq;
    SimpleMedia::Params p;
    p.readLatency = 100 * kNs;
    p.writeLatency = 200 * kNs;
    p.bandwidthMBps = 1000.0; // 1 GB/s -> 4 KB in ~4.1 us.
    SimpleMedia m(eq, "test", 1 * kGiB, p);

    Tick finish = 0;
    m.readRange(0, 4096, nullptr, [&] { finish = eq.now(); });
    eq.runAll();
    EXPECT_NEAR(ticksToUs(finish), 0.1 + 4.096, 0.05);

    // Back-to-back ops pipeline through busyUntil.
    Tick f2 = 0;
    m.writeRange(0, 4096, nullptr, [&] { f2 = eq.now(); });
    eq.runAll();
    EXPECT_GT(f2, finish);
}

TEST(SimpleMediaTest, DataRoundTrip)
{
    EventQueue eq;
    Pram m(eq, 64 * kMiB);
    std::vector<std::uint8_t> w(8192, 0x42), r(8192, 0);
    m.writeRange(4096, 8192, w.data(), [] {});
    eq.runAll();
    m.readRange(4096, 8192, r.data(), [] {});
    eq.runAll();
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 8192), 0);
}

TEST(SimpleMediaTest, UnwrittenReadsZero)
{
    EventQueue eq;
    SttMram m(eq, 64 * kMiB);
    std::vector<std::uint8_t> r(4096, 0xaa);
    m.readRange(0, 4096, r.data(), [] {});
    eq.runAll();
    EXPECT_EQ(r[0], 0);
}

TEST(SimpleMediaTest, PresetLatenciesOrdered)
{
    // STT-MRAM must be much faster than PRAM (paper §III-A).
    EXPECT_LT(SttMram::defaultParams().readLatency,
              Pram::defaultParams().readLatency);
    EXPECT_LT(SttMram::defaultParams().writeLatency,
              Pram::defaultParams().writeLatency);
}

TEST(DelayMediaTest, ProgrammableDelay)
{
    EventQueue eq;
    DelayMedia m(eq, 64 * kMiB, 1850 * kNs);
    Tick finish = 0;
    m.readRange(0, 4096, nullptr, [&] { finish = eq.now(); });
    eq.runAll();
    EXPECT_EQ(finish, 1850 * kNs);

    m.setDelay(0);
    Tick f2 = kTickNever;
    m.readRange(0, 4096, nullptr, [&] { f2 = eq.now(); });
    eq.runAll();
    EXPECT_EQ(f2, finish) << "tD = 0 completes immediately";
}

TEST(DirectBackendTest, PageInterface)
{
    EventQueue eq;
    DelayMedia m(eq, 64 * kMiB, 10 * kNs);
    DirectBackend backend(m);
    EXPECT_EQ(backend.pageCount(), 64 * kMiB / 4096);

    std::vector<std::uint8_t> w(4096, 0x77), r(4096, 0);
    backend.writePage(3, w.data(), [] {});
    eq.runAll();
    backend.readPage(3, r.data(), [] {});
    eq.runAll();
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);
}

TEST(RawZNandBackendTest, WrapsWithoutTranslation)
{
    EventQueue eq;
    ZNand nand(eq, ZNandParams::tiny());
    RawZNandBackend backend(nand);
    EXPECT_EQ(backend.pageCount(), nand.params().totalPages());
    std::vector<std::uint8_t> w(4096, 0x12), r(4096, 0);
    backend.writePage(0, w.data(), [] {});
    eq.runAll();
    backend.readPage(0, r.data(), [] {});
    eq.runAll();
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);
}

/** Media stats accumulate. */
TEST(MediaStatsTest, CountsOps)
{
    EventQueue eq;
    Pram m(eq, 64 * kMiB);
    m.readRange(0, 4096, nullptr, [] {});
    m.writeRange(0, 4096, nullptr, [] {});
    eq.runAll();
    EXPECT_EQ(m.stats().reads.value(), 1u);
    EXPECT_EQ(m.stats().writes.value(), 1u);
    EXPECT_GT(m.stats().readLatency.max(), 0u);
}

} // namespace
} // namespace nvdimmc::nvm
