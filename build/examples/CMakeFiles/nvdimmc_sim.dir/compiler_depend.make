# Empty compiler generated dependencies file for nvdimmc_sim.
# This may be replaced when dependencies are built.
