file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_sim.dir/nvdimmc_sim.cpp.o"
  "CMakeFiles/nvdimmc_sim.dir/nvdimmc_sim.cpp.o.d"
  "nvdimmc_sim"
  "nvdimmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
