file(REMOVE_RECURSE
  "CMakeFiles/bus_inspector.dir/bus_inspector.cpp.o"
  "CMakeFiles/bus_inspector.dir/bus_inspector.cpp.o.d"
  "bus_inspector"
  "bus_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
