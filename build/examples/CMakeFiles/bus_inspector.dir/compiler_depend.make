# Empty compiler generated dependencies file for bus_inspector.
# This may be replaced when dependencies are built.
