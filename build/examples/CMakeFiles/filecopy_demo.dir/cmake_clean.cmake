file(REMOVE_RECURSE
  "CMakeFiles/filecopy_demo.dir/filecopy_demo.cpp.o"
  "CMakeFiles/filecopy_demo.dir/filecopy_demo.cpp.o.d"
  "filecopy_demo"
  "filecopy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filecopy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
