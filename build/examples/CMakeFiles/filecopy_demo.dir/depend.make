# Empty dependencies file for filecopy_demo.
# This may be replaced when dependencies are built.
