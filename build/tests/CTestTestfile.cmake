# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dram_command_test[1]_include.cmake")
include("/root/repo/build/tests/dram_device_test[1]_include.cmake")
include("/root/repo/build/tests/bus_test[1]_include.cmake")
include("/root/repo/build/tests/imc_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/nvmc_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
