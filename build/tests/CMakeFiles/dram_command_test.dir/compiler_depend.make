# Empty compiler generated dependencies file for dram_command_test.
# This may be replaced when dependencies are built.
