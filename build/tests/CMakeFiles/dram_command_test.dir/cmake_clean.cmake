file(REMOVE_RECURSE
  "CMakeFiles/dram_command_test.dir/dram_command_test.cc.o"
  "CMakeFiles/dram_command_test.dir/dram_command_test.cc.o.d"
  "dram_command_test"
  "dram_command_test.pdb"
  "dram_command_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_command_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
