file(REMOVE_RECURSE
  "CMakeFiles/dram_device_test.dir/dram_device_test.cc.o"
  "CMakeFiles/dram_device_test.dir/dram_device_test.cc.o.d"
  "dram_device_test"
  "dram_device_test.pdb"
  "dram_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
