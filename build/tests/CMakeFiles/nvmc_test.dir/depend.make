# Empty dependencies file for nvmc_test.
# This may be replaced when dependencies are built.
