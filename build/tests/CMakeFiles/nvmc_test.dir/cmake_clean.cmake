file(REMOVE_RECURSE
  "CMakeFiles/nvmc_test.dir/nvmc_test.cc.o"
  "CMakeFiles/nvmc_test.dir/nvmc_test.cc.o.d"
  "nvmc_test"
  "nvmc_test.pdb"
  "nvmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
