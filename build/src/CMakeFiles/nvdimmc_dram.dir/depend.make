# Empty dependencies file for nvdimmc_dram.
# This may be replaced when dependencies are built.
