file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_dram.dir/dram/address_map.cc.o"
  "CMakeFiles/nvdimmc_dram.dir/dram/address_map.cc.o.d"
  "CMakeFiles/nvdimmc_dram.dir/dram/bank.cc.o"
  "CMakeFiles/nvdimmc_dram.dir/dram/bank.cc.o.d"
  "CMakeFiles/nvdimmc_dram.dir/dram/ddr4_command.cc.o"
  "CMakeFiles/nvdimmc_dram.dir/dram/ddr4_command.cc.o.d"
  "CMakeFiles/nvdimmc_dram.dir/dram/dram_device.cc.o"
  "CMakeFiles/nvdimmc_dram.dir/dram/dram_device.cc.o.d"
  "CMakeFiles/nvdimmc_dram.dir/dram/timing.cc.o"
  "CMakeFiles/nvdimmc_dram.dir/dram/timing.cc.o.d"
  "libnvdimmc_dram.a"
  "libnvdimmc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
