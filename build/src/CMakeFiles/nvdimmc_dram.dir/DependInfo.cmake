
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/address_map.cc" "src/CMakeFiles/nvdimmc_dram.dir/dram/address_map.cc.o" "gcc" "src/CMakeFiles/nvdimmc_dram.dir/dram/address_map.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/nvdimmc_dram.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/nvdimmc_dram.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/ddr4_command.cc" "src/CMakeFiles/nvdimmc_dram.dir/dram/ddr4_command.cc.o" "gcc" "src/CMakeFiles/nvdimmc_dram.dir/dram/ddr4_command.cc.o.d"
  "/root/repo/src/dram/dram_device.cc" "src/CMakeFiles/nvdimmc_dram.dir/dram/dram_device.cc.o" "gcc" "src/CMakeFiles/nvdimmc_dram.dir/dram/dram_device.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/nvdimmc_dram.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/nvdimmc_dram.dir/dram/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvdimmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
