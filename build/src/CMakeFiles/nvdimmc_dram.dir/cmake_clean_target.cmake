file(REMOVE_RECURSE
  "libnvdimmc_dram.a"
)
