file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_common.dir/common/config.cc.o"
  "CMakeFiles/nvdimmc_common.dir/common/config.cc.o.d"
  "CMakeFiles/nvdimmc_common.dir/common/event_queue.cc.o"
  "CMakeFiles/nvdimmc_common.dir/common/event_queue.cc.o.d"
  "CMakeFiles/nvdimmc_common.dir/common/logging.cc.o"
  "CMakeFiles/nvdimmc_common.dir/common/logging.cc.o.d"
  "CMakeFiles/nvdimmc_common.dir/common/stats.cc.o"
  "CMakeFiles/nvdimmc_common.dir/common/stats.cc.o.d"
  "libnvdimmc_common.a"
  "libnvdimmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
