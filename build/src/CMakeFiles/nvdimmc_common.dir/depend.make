# Empty dependencies file for nvdimmc_common.
# This may be replaced when dependencies are built.
