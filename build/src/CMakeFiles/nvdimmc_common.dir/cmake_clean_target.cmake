file(REMOVE_RECURSE
  "libnvdimmc_common.a"
)
