
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvm/delay_media.cc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/delay_media.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/delay_media.cc.o.d"
  "/root/repo/src/nvm/nvm_media.cc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/nvm_media.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/nvm_media.cc.o.d"
  "/root/repo/src/nvm/pram.cc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/pram.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/pram.cc.o.d"
  "/root/repo/src/nvm/sttmram.cc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/sttmram.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/sttmram.cc.o.d"
  "/root/repo/src/nvm/znand.cc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/znand.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvm.dir/nvm/znand.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvdimmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
