# Empty compiler generated dependencies file for nvdimmc_nvm.
# This may be replaced when dependencies are built.
