file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_nvm.dir/nvm/delay_media.cc.o"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/delay_media.cc.o.d"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/nvm_media.cc.o"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/nvm_media.cc.o.d"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/pram.cc.o"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/pram.cc.o.d"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/sttmram.cc.o"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/sttmram.cc.o.d"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/znand.cc.o"
  "CMakeFiles/nvdimmc_nvm.dir/nvm/znand.cc.o.d"
  "libnvdimmc_nvm.a"
  "libnvdimmc_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
