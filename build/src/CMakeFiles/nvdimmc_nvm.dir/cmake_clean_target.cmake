file(REMOVE_RECURSE
  "libnvdimmc_nvm.a"
)
