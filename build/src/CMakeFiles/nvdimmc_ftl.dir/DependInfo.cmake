
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/bad_block_manager.cc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/bad_block_manager.cc.o" "gcc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/bad_block_manager.cc.o.d"
  "/root/repo/src/ftl/ecc.cc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/ecc.cc.o" "gcc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/ecc.cc.o.d"
  "/root/repo/src/ftl/ftl.cc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/ftl.cc.o" "gcc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/ftl.cc.o.d"
  "/root/repo/src/ftl/garbage_collector.cc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/garbage_collector.cc.o" "gcc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/garbage_collector.cc.o.d"
  "/root/repo/src/ftl/mapping_table.cc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/mapping_table.cc.o" "gcc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/mapping_table.cc.o.d"
  "/root/repo/src/ftl/wear_leveler.cc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/wear_leveler.cc.o" "gcc" "src/CMakeFiles/nvdimmc_ftl.dir/ftl/wear_leveler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvdimmc_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
