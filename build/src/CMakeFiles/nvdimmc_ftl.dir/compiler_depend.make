# Empty compiler generated dependencies file for nvdimmc_ftl.
# This may be replaced when dependencies are built.
