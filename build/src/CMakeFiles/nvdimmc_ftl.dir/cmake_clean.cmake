file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_ftl.dir/ftl/bad_block_manager.cc.o"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/bad_block_manager.cc.o.d"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/ecc.cc.o"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/ecc.cc.o.d"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/ftl.cc.o"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/ftl.cc.o.d"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/garbage_collector.cc.o"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/garbage_collector.cc.o.d"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/mapping_table.cc.o"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/mapping_table.cc.o.d"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/wear_leveler.cc.o"
  "CMakeFiles/nvdimmc_ftl.dir/ftl/wear_leveler.cc.o.d"
  "libnvdimmc_ftl.a"
  "libnvdimmc_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
