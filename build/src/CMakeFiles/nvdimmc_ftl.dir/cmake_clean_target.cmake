file(REMOVE_RECURSE
  "libnvdimmc_ftl.a"
)
