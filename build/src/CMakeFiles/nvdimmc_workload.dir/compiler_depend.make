# Empty compiler generated dependencies file for nvdimmc_workload.
# This may be replaced when dependencies are built.
