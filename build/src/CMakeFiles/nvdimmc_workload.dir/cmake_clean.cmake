file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_workload.dir/workload/filecopy.cc.o"
  "CMakeFiles/nvdimmc_workload.dir/workload/filecopy.cc.o.d"
  "CMakeFiles/nvdimmc_workload.dir/workload/fio.cc.o"
  "CMakeFiles/nvdimmc_workload.dir/workload/fio.cc.o.d"
  "CMakeFiles/nvdimmc_workload.dir/workload/mixedload.cc.o"
  "CMakeFiles/nvdimmc_workload.dir/workload/mixedload.cc.o.d"
  "CMakeFiles/nvdimmc_workload.dir/workload/ssd.cc.o"
  "CMakeFiles/nvdimmc_workload.dir/workload/ssd.cc.o.d"
  "CMakeFiles/nvdimmc_workload.dir/workload/stream.cc.o"
  "CMakeFiles/nvdimmc_workload.dir/workload/stream.cc.o.d"
  "CMakeFiles/nvdimmc_workload.dir/workload/tpch.cc.o"
  "CMakeFiles/nvdimmc_workload.dir/workload/tpch.cc.o.d"
  "libnvdimmc_workload.a"
  "libnvdimmc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
