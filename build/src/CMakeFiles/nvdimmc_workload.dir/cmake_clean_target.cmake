file(REMOVE_RECURSE
  "libnvdimmc_workload.a"
)
