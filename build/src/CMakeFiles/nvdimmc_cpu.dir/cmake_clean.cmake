file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_cpu.dir/cpu/cache_model.cc.o"
  "CMakeFiles/nvdimmc_cpu.dir/cpu/cache_model.cc.o.d"
  "CMakeFiles/nvdimmc_cpu.dir/cpu/memcpy_engine.cc.o"
  "CMakeFiles/nvdimmc_cpu.dir/cpu/memcpy_engine.cc.o.d"
  "CMakeFiles/nvdimmc_cpu.dir/cpu/thread.cc.o"
  "CMakeFiles/nvdimmc_cpu.dir/cpu/thread.cc.o.d"
  "libnvdimmc_cpu.a"
  "libnvdimmc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
