file(REMOVE_RECURSE
  "libnvdimmc_cpu.a"
)
