# Empty dependencies file for nvdimmc_cpu.
# This may be replaced when dependencies are built.
