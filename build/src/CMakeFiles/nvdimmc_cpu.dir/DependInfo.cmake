
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cache_model.cc" "src/CMakeFiles/nvdimmc_cpu.dir/cpu/cache_model.cc.o" "gcc" "src/CMakeFiles/nvdimmc_cpu.dir/cpu/cache_model.cc.o.d"
  "/root/repo/src/cpu/memcpy_engine.cc" "src/CMakeFiles/nvdimmc_cpu.dir/cpu/memcpy_engine.cc.o" "gcc" "src/CMakeFiles/nvdimmc_cpu.dir/cpu/memcpy_engine.cc.o.d"
  "/root/repo/src/cpu/thread.cc" "src/CMakeFiles/nvdimmc_cpu.dir/cpu/thread.cc.o" "gcc" "src/CMakeFiles/nvdimmc_cpu.dir/cpu/thread.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvdimmc_imc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
