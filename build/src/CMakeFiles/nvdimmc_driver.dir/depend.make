# Empty dependencies file for nvdimmc_driver.
# This may be replaced when dependencies are built.
