file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_driver.dir/driver/dram_cache.cc.o"
  "CMakeFiles/nvdimmc_driver.dir/driver/dram_cache.cc.o.d"
  "CMakeFiles/nvdimmc_driver.dir/driver/nvdc_driver.cc.o"
  "CMakeFiles/nvdimmc_driver.dir/driver/nvdc_driver.cc.o.d"
  "CMakeFiles/nvdimmc_driver.dir/driver/nvdimmf_driver.cc.o"
  "CMakeFiles/nvdimmc_driver.dir/driver/nvdimmf_driver.cc.o.d"
  "CMakeFiles/nvdimmc_driver.dir/driver/nvdimmn_driver.cc.o"
  "CMakeFiles/nvdimmc_driver.dir/driver/nvdimmn_driver.cc.o.d"
  "CMakeFiles/nvdimmc_driver.dir/driver/page_table.cc.o"
  "CMakeFiles/nvdimmc_driver.dir/driver/page_table.cc.o.d"
  "CMakeFiles/nvdimmc_driver.dir/driver/pmem_driver.cc.o"
  "CMakeFiles/nvdimmc_driver.dir/driver/pmem_driver.cc.o.d"
  "CMakeFiles/nvdimmc_driver.dir/driver/replacement_policy.cc.o"
  "CMakeFiles/nvdimmc_driver.dir/driver/replacement_policy.cc.o.d"
  "libnvdimmc_driver.a"
  "libnvdimmc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
