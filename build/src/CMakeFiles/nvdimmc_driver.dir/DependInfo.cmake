
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/dram_cache.cc" "src/CMakeFiles/nvdimmc_driver.dir/driver/dram_cache.cc.o" "gcc" "src/CMakeFiles/nvdimmc_driver.dir/driver/dram_cache.cc.o.d"
  "/root/repo/src/driver/nvdc_driver.cc" "src/CMakeFiles/nvdimmc_driver.dir/driver/nvdc_driver.cc.o" "gcc" "src/CMakeFiles/nvdimmc_driver.dir/driver/nvdc_driver.cc.o.d"
  "/root/repo/src/driver/nvdimmf_driver.cc" "src/CMakeFiles/nvdimmc_driver.dir/driver/nvdimmf_driver.cc.o" "gcc" "src/CMakeFiles/nvdimmc_driver.dir/driver/nvdimmf_driver.cc.o.d"
  "/root/repo/src/driver/nvdimmn_driver.cc" "src/CMakeFiles/nvdimmc_driver.dir/driver/nvdimmn_driver.cc.o" "gcc" "src/CMakeFiles/nvdimmc_driver.dir/driver/nvdimmn_driver.cc.o.d"
  "/root/repo/src/driver/page_table.cc" "src/CMakeFiles/nvdimmc_driver.dir/driver/page_table.cc.o" "gcc" "src/CMakeFiles/nvdimmc_driver.dir/driver/page_table.cc.o.d"
  "/root/repo/src/driver/pmem_driver.cc" "src/CMakeFiles/nvdimmc_driver.dir/driver/pmem_driver.cc.o" "gcc" "src/CMakeFiles/nvdimmc_driver.dir/driver/pmem_driver.cc.o.d"
  "/root/repo/src/driver/replacement_policy.cc" "src/CMakeFiles/nvdimmc_driver.dir/driver/replacement_policy.cc.o" "gcc" "src/CMakeFiles/nvdimmc_driver.dir/driver/replacement_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvdimmc_nvmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_imc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
