file(REMOVE_RECURSE
  "libnvdimmc_driver.a"
)
