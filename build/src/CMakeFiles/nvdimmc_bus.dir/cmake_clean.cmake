file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_bus.dir/bus/memory_bus.cc.o"
  "CMakeFiles/nvdimmc_bus.dir/bus/memory_bus.cc.o.d"
  "libnvdimmc_bus.a"
  "libnvdimmc_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
