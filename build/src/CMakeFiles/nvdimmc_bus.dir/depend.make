# Empty dependencies file for nvdimmc_bus.
# This may be replaced when dependencies are built.
