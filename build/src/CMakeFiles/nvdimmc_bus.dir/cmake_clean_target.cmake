file(REMOVE_RECURSE
  "libnvdimmc_bus.a"
)
