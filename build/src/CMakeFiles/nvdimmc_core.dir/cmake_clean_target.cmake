file(REMOVE_RECURSE
  "libnvdimmc_core.a"
)
