file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_core.dir/core/power.cc.o"
  "CMakeFiles/nvdimmc_core.dir/core/power.cc.o.d"
  "CMakeFiles/nvdimmc_core.dir/core/system.cc.o"
  "CMakeFiles/nvdimmc_core.dir/core/system.cc.o.d"
  "CMakeFiles/nvdimmc_core.dir/core/system_config.cc.o"
  "CMakeFiles/nvdimmc_core.dir/core/system_config.cc.o.d"
  "libnvdimmc_core.a"
  "libnvdimmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
