# Empty dependencies file for nvdimmc_core.
# This may be replaced when dependencies are built.
