file(REMOVE_RECURSE
  "libnvdimmc_imc.a"
)
