
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imc/imc.cc" "src/CMakeFiles/nvdimmc_imc.dir/imc/imc.cc.o" "gcc" "src/CMakeFiles/nvdimmc_imc.dir/imc/imc.cc.o.d"
  "/root/repo/src/imc/scheduler.cc" "src/CMakeFiles/nvdimmc_imc.dir/imc/scheduler.cc.o" "gcc" "src/CMakeFiles/nvdimmc_imc.dir/imc/scheduler.cc.o.d"
  "/root/repo/src/imc/wpq.cc" "src/CMakeFiles/nvdimmc_imc.dir/imc/wpq.cc.o" "gcc" "src/CMakeFiles/nvdimmc_imc.dir/imc/wpq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvdimmc_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
