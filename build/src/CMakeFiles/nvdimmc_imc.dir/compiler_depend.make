# Empty compiler generated dependencies file for nvdimmc_imc.
# This may be replaced when dependencies are built.
