file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_imc.dir/imc/imc.cc.o"
  "CMakeFiles/nvdimmc_imc.dir/imc/imc.cc.o.d"
  "CMakeFiles/nvdimmc_imc.dir/imc/scheduler.cc.o"
  "CMakeFiles/nvdimmc_imc.dir/imc/scheduler.cc.o.d"
  "CMakeFiles/nvdimmc_imc.dir/imc/wpq.cc.o"
  "CMakeFiles/nvdimmc_imc.dir/imc/wpq.cc.o.d"
  "libnvdimmc_imc.a"
  "libnvdimmc_imc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_imc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
