# Empty compiler generated dependencies file for nvdimmc_nvmc.
# This may be replaced when dependencies are built.
