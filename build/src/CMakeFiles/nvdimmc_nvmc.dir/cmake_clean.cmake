file(REMOVE_RECURSE
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/cp_protocol.cc.o"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/cp_protocol.cc.o.d"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/ddr4_controller.cc.o"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/ddr4_controller.cc.o.d"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/deserializer.cc.o"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/deserializer.cc.o.d"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/dma_engine.cc.o"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/dma_engine.cc.o.d"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/firmware.cc.o"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/firmware.cc.o.d"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/nvmc.cc.o"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/nvmc.cc.o.d"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/refresh_detector.cc.o"
  "CMakeFiles/nvdimmc_nvmc.dir/nvmc/refresh_detector.cc.o.d"
  "libnvdimmc_nvmc.a"
  "libnvdimmc_nvmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvdimmc_nvmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
