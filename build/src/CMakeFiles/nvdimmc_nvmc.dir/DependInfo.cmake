
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvmc/cp_protocol.cc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/cp_protocol.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/cp_protocol.cc.o.d"
  "/root/repo/src/nvmc/ddr4_controller.cc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/ddr4_controller.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/ddr4_controller.cc.o.d"
  "/root/repo/src/nvmc/deserializer.cc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/deserializer.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/deserializer.cc.o.d"
  "/root/repo/src/nvmc/dma_engine.cc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/dma_engine.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/dma_engine.cc.o.d"
  "/root/repo/src/nvmc/firmware.cc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/firmware.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/firmware.cc.o.d"
  "/root/repo/src/nvmc/nvmc.cc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/nvmc.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/nvmc.cc.o.d"
  "/root/repo/src/nvmc/refresh_detector.cc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/refresh_detector.cc.o" "gcc" "src/CMakeFiles/nvdimmc_nvmc.dir/nvmc/refresh_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvdimmc_imc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nvdimmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
