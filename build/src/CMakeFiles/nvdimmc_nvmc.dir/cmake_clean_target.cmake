file(REMOVE_RECURSE
  "libnvdimmc_nvmc.a"
)
