# Empty dependencies file for bench_refresh_detector.
# This may be replaced when dependencies are built.
