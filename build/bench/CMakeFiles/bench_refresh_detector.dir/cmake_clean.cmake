file(REMOVE_RECURSE
  "CMakeFiles/bench_refresh_detector.dir/bench_refresh_detector.cc.o"
  "CMakeFiles/bench_refresh_detector.dir/bench_refresh_detector.cc.o.d"
  "bench_refresh_detector"
  "bench_refresh_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
