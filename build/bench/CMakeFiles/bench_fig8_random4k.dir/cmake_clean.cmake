file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_random4k.dir/bench_fig8_random4k.cc.o"
  "CMakeFiles/bench_fig8_random4k.dir/bench_fig8_random4k.cc.o.d"
  "bench_fig8_random4k"
  "bench_fig8_random4k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_random4k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
