# Empty compiler generated dependencies file for bench_fig8_random4k.
# This may be replaced when dependencies are built.
