# Empty dependencies file for bench_fig7_filecopy.
# This may be replaced when dependencies are built.
