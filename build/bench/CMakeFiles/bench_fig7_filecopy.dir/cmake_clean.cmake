file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_filecopy.dir/bench_fig7_filecopy.cc.o"
  "CMakeFiles/bench_fig7_filecopy.dir/bench_fig7_filecopy.cc.o.d"
  "bench_fig7_filecopy"
  "bench_fig7_filecopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_filecopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
