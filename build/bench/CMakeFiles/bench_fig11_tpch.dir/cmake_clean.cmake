file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tpch.dir/bench_fig11_tpch.cc.o"
  "CMakeFiles/bench_fig11_tpch.dir/bench_fig11_tpch.cc.o.d"
  "bench_fig11_tpch"
  "bench_fig11_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
