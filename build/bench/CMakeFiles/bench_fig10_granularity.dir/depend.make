# Empty dependencies file for bench_fig10_granularity.
# This may be replaced when dependencies are built.
