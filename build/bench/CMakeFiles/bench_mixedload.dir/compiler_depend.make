# Empty compiler generated dependencies file for bench_mixedload.
# This may be replaced when dependencies are built.
