file(REMOVE_RECURSE
  "CMakeFiles/bench_mixedload.dir/bench_mixedload.cc.o"
  "CMakeFiles/bench_mixedload.dir/bench_mixedload.cc.o.d"
  "bench_mixedload"
  "bench_mixedload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixedload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
