# Empty dependencies file for bench_fig13_host_dram.
# This may be replaced when dependencies are built.
