file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_hypothetical.dir/bench_fig12_hypothetical.cc.o"
  "CMakeFiles/bench_fig12_hypothetical.dir/bench_fig12_hypothetical.cc.o.d"
  "bench_fig12_hypothetical"
  "bench_fig12_hypothetical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hypothetical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
