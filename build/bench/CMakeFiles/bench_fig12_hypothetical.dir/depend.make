# Empty dependencies file for bench_fig12_hypothetical.
# This may be replaced when dependencies are built.
